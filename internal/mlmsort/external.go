package mlmsort

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"knlmlm/internal/exec"
	"knlmlm/internal/model"
	"knlmlm/internal/psort"
	"knlmlm/internal/spill"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/tune"
	"knlmlm/internal/units"
)

// ExternalOptions configures the three-level (MCDRAM -> DDR -> disk)
// out-of-core sort. It embeds RealOptions: everything the resilient
// in-memory path understands — staged heap placement, fault wrapping,
// retries, chunk deadlines, width control, autotuning, pooling — applies
// unchanged to the spill pipeline's phase 1.
type ExternalOptions struct {
	RealOptions

	// Store is the run store sorted megachunks spill to. Nil makes
	// RunRealExternal create a private store (under SpillDir, capped at
	// DiskBudget) that is closed — all run files deleted — before it
	// returns, on every path.
	Store *spill.Store
	// SpillDir is the private store's parent directory; empty selects the
	// OS temp dir. Ignored when Store is set.
	SpillDir string
	// DiskBudget caps the private store's footprint in bytes (0 =
	// uncapped). Ignored when Store is set.
	DiskBudget int64
	// Registry, when non-nil, receives the private store's spill_*
	// metrics. Ignored when Store is set (the store already has one).
	Registry *telemetry.Registry

	// MergeBlock is the element count of each read-ahead block the final
	// merge streams run files through; zero selects 64Ki elements.
	MergeBlock int
	// ReadAhead is the number of concurrent run-file fill workers feeding
	// the final merge. Zero derives it from DiskRate/MergeRate via the
	// Eq. 1-5 solve (tune.SpillReadAhead) when both are known, else 2.
	ReadAhead int
	// DiskRate is the measured sequential disk read bandwidth
	// (tune.MeasureDiskRate); used with MergeRate to provision ReadAhead.
	DiskRate units.BytesPerSec
	// MergeRate is the per-thread merge compute rate (e.g. the scheduler's
	// EWMA of autotuner measurements); used with DiskRate.
	MergeRate units.BytesPerSec
	// MergeThreads is the worker count each merge round's loser-tree pass
	// may fan out to (psort.ParallelMergeK, multisequence selection).
	// Rounds smaller than parallelMergeMin and values <= 1 keep the
	// serial merge.
	MergeThreads int

	// Sink, when non-nil, receives the merged output as a stream of sorted
	// batches (nondecreasing across calls) instead of it being written
	// back into xs. Batches are only valid during the call.
	Sink func([]int64) error
}

// ExternalStats extends RealStats with the spill tier's accounting.
type ExternalStats struct {
	RealStats
	// Runs is the number of run files the sort spilled.
	Runs int
	// SpilledBytes is the total bytes written to run files.
	SpilledBytes int64
	// MergedElems is the element count the final merge emitted.
	MergedElems int64
	// ReadAhead is the fill-worker width the merge ran with.
	ReadAhead int
}

// mergeBlock resolves the read-ahead block size.
func (o ExternalOptions) mergeBlock() int {
	if o.MergeBlock > 0 {
		return o.MergeBlock
	}
	return 64 << 10
}

// readAhead resolves the fill-worker width for a k-run merge under a
// thread budget.
func (o ExternalOptions) readAhead(k, threads int) int {
	w := o.ReadAhead
	if w <= 0 {
		w = tune.SpillReadAhead(o.DiskRate, o.MergeRate, threads+2, 0)
	}
	if w <= 0 {
		w = 2
	}
	if w > k {
		w = k
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunRealExternal sorts xs through all three memory levels: megachunks
// are staged through the MCDRAM analog and sorted exactly as RunReal's
// phase 1, each sorted run is spilled to disk instead of accumulating in
// DDR, and a final k-way streaming merge over the run files produces the
// output — written back into xs, or streamed through opts.Sink without
// ever materializing in memory. The DDR working set is therefore bounded
// by the pipeline's staging buffers plus the merge's read-ahead blocks,
// independent of len(xs).
//
// Failure semantics match RunRealResilient: injected or genuine run-file
// IO faults surface as stage errors and are retried under opts.Retry;
// the spill tier's run files are deleted on every path — completion,
// cancellation, and fault abort.
func RunRealExternal(ctx context.Context, a Algorithm, xs []int64, threads, megachunkLen int, opts ExternalOptions) (ExternalStats, error) {
	stats, err := runRealExternal(ctx, a, xs, threads, megachunkLen, opts)
	if opts.Resilience != nil {
		opts.Resilience.RecordOutcome(err)
	}
	return stats, err
}

func runRealExternal(ctx context.Context, a Algorithm, xs []int64, threads, megachunkLen int, opts ExternalOptions) (ExternalStats, error) {
	if opts.Store == nil {
		st, err := spill.NewStore(spill.Config{
			Dir:      opts.SpillDir,
			MaxBytes: opts.DiskBudget,
			Registry: opts.Registry,
		})
		if err != nil {
			return ExternalStats{}, err
		}
		defer st.Close()
		opts.Store = st
	}

	runs, stats, err := SpillSorted(ctx, a, xs, threads, megachunkLen, opts)
	// The runs are deleted on every exit below this point; a shared store
	// must not accumulate this sort's files past its lifetime.
	defer func() {
		for _, id := range runs {
			opts.Store.RemoveRun(id)
		}
	}()
	if err != nil {
		return stats, err
	}

	sink := opts.Sink
	if sink == nil {
		pos := 0
		sink = func(batch []int64) error {
			pos += copy(xs[pos:], batch)
			return nil
		}
	}
	stats.ReadAhead = opts.readAhead(len(runs), threads)
	merged, err := MergeSpilled(ctx, opts.Store, runs, opts, sink)
	stats.MergedElems = merged
	return stats, err
}

// SpillSorted is phase 1 of the out-of-core sort: it runs the same staged
// megachunk pipeline as the in-memory MLM variants, but the copy-out
// stage writes each sorted megachunk to a run file in opts.Store instead
// of back to DDR. It returns the run ids (one per megachunk, in key
// order of megachunk position). Run-file write faults fail the copy-out
// attempt and are retried under opts.Retry; a retried write re-creates
// the run, so half-written files never survive.
//
// On error the caller owns cleanup of whatever runs were created —
// RemoveRun over the returned ids (a no-op for runs that never sealed).
func SpillSorted(ctx context.Context, a Algorithm, xs []int64, threads, megachunkLen int, opts ExternalOptions) ([]int, ExternalStats, error) {
	if threads < 1 {
		return nil, ExternalStats{}, fmt.Errorf("mlmsort: threads %d must be positive", threads)
	}
	if opts.Store == nil {
		return nil, ExternalStats{}, fmt.Errorf("mlmsort: SpillSorted needs a run store")
	}
	n := len(xs)
	if err := opts.Elem.validateBuffer(n); err != nil {
		return nil, ExternalStats{}, err
	}
	if n == 0 {
		return nil, ExternalStats{}, ctx.Err()
	}
	if megachunkLen <= 0 {
		megachunkLen = (n + 3) / 4 // same default as the staged in-memory path
	}
	// Record jobs spill fine under every algorithm here — the spill path
	// is megachunk-structured for all of them — but megachunks (and
	// therefore run files) must hold whole records.
	megachunkLen = opts.Elem.alignChunk(megachunkLen)
	bounds := megachunkBounds(n, megachunkLen)
	runIDs := make([]int, len(bounds))
	maxLen := 0
	for i, b := range bounds {
		runIDs[i] = i
		if l := b[1] - b[0]; l > maxLen {
			maxLen = l
		}
	}
	stats := ExternalStats{RealStats: RealStats{Megachunks: len(bounds)}, Runs: len(bounds)}

	// Scratch and width discipline are identical to runRealMLM: pooled
	// scratch returned only on clean completion, copy/compute widths from
	// the external control when present.
	scratchPool := opts.pool()
	scratch := scratchPool.Get(maxLen)
	if scratch == nil && maxLen > 0 {
		scratch = make([]int64, maxLen)
		scratchPool = nil
	}
	sorter := newMegachunkSorter(threads, opts.Elem)
	copyW := new(atomic.Int32)
	copyW.Store(1)
	if opts.Widths != nil {
		copyW = &opts.Widths.copyIn
		sorter.width = &opts.Widths.comp
		if copyW.Load() <= 0 {
			copyW.Store(1)
		}
		if sorter.width.Load() <= 0 {
			sorter.width.Store(int32(threads))
		}
	}

	writeRun := func(i int, src []int64) error {
		w, err := opts.Store.CreateRun(i)
		if err != nil {
			return err
		}
		if err := w.Append(src); err != nil {
			_ = w.Close()
			return err
		}
		return w.Close()
	}

	s := exec.Stages{
		NumChunks: len(bounds),
		ChunkLen:  func(i int) int { return bounds[i][1] - bounds[i][0] },
	}
	staged := a == MLMSort || a == MLMHybrid
	var table *stagingTable
	if staged {
		table = newStagingTable(opts.Heap, len(bounds))
		s.CopyIn = func(i int, dst []int64) error {
			lo, hi := bounds[i][0], bounds[i][1]
			if !table.stage(i, units.BytesForElements(int64(hi-lo)), opts.RealOptions) {
				return nil // degraded: sort the megachunk in DDR
			}
			exec.CopyParallel(dst, xs[lo:hi], int(copyW.Load()))
			return nil
		}
		s.Compute = func(i int, buf []int64) error {
			if table.isDegraded(i) {
				lo, hi := bounds[i][0], bounds[i][1]
				sorter.sort(xs[lo:hi], scratch)
				return nil
			}
			sorter.sort(buf, scratch)
			return nil
		}
		s.CopyOut = func(i int, src []int64) error {
			if table.isDegraded(i) {
				lo, hi := bounds[i][0], bounds[i][1]
				return writeRun(i, xs[lo:hi])
			}
			if err := writeRun(i, src); err != nil {
				return err
			}
			table.release(i)
			return nil
		}
	} else {
		// In-place variants: the megachunk is sorted where it lives and the
		// copy-out streams it to disk from there. The staging buffer is
		// untouched, so CopyIn has nothing to move.
		s.CopyIn = func(i int, _ []int64) error { return nil }
		s.Compute = func(i int, _ []int64) error {
			lo, hi := bounds[i][0], bounds[i][1]
			sorter.sort(xs[lo:hi], scratch)
			return nil
		}
		s.CopyOut = func(i int, _ []int64) error {
			lo, hi := bounds[i][0], bounds[i][1]
			return writeRun(i, xs[lo:hi])
		}
	}
	fs := opts.finish(s)
	var tuner *tune.PipelineTuner
	if at := opts.Autotune; at != nil && staged {
		total := at.TotalThreads
		if total <= 0 {
			total = threads + 2
		}
		tuner = tune.NewPipelineTuner(tune.Config{
			Initial:      model.Pools{In: int(copyW.Load()), Out: int(copyW.Load()), Comp: int(sorter.width.Load())},
			TotalThreads: total,
			MaxCopyIn:    at.MaxCopyIn,
			WarmupChunks: at.WarmupChunks,
			Bytes:        units.BytesForElements(int64(n)),
			Registry:     at.Registry,
			Next:         fs.Observer,
			OnProvision: func(p model.Prediction) {
				if opts.Widths != nil {
					opts.Widths.SetPools(p.Pools)
				} else {
					if p.Pools.In > 0 {
						copyW.Store(int32(p.Pools.In))
					}
					if p.Pools.Comp > 0 {
						sorter.width.Store(int32(p.Pools.Comp))
					}
				}
				if at.OnDecision != nil {
					at.OnDecision(p)
				}
			},
		})
		fs.Observer = tuner
	}
	err := exec.RunContext(ctx, fs, opts.buffers())
	if tuner != nil {
		if dec, ok := tuner.Decision(); ok {
			stats.Retunes = 1
			stats.TunedPools = dec.Pools
		}
	}
	if table != nil {
		stats.Degraded, stats.AllocFailures = table.drain()
		stats.Staged = stats.Megachunks - stats.Degraded
	}
	if err != nil {
		return runIDs, stats, err
	}
	if scratchPool != nil {
		scratchPool.Put(scratch)
	}
	for _, id := range runIDs {
		stats.SpilledBytes += opts.Store.RunElems(id) * 8
	}
	return runIDs, stats, nil
}

// unpooledCap picks a capacity that is not a pool size class (the same
// trick as exec's degraded buffer allocation), so the pool drops the
// slice on Put instead of adopting memory its budget never accounted.
func unpooledCap(n int) int {
	if n < 2 {
		n = 2
	}
	if n&(n-1) == 0 {
		n++
	}
	return n
}

// spillBlock is one filled read-ahead block (or a terminal read error)
// traveling from a fill worker to the merge loop.
type spillBlock struct {
	data []int64
	err  error
}

// MergeSpilled is phase 2: a k-way streaming merge over the given run
// files, emitting the globally sorted sequence to sink in batches. Disk
// copy-in overlaps merge compute exactly as the paper's pipeline overlaps
// MCDRAM staging with sorting: one fill goroutine per run streams blocks
// into a bounded channel (double buffering per run), with at most
// opts.ReadAhead fills in flight at once — the copy-pool width, here
// provisioned against the measured disk rate instead of the DDR rate.
// Blocks come from opts.Pool (falling back to the shared pool, degrading
// to unpooled allocation on budget refusal) and are recycled as the merge
// consumes them, so the merge's DDR footprint is O(runs x MergeBlock),
// independent of the dataset.
//
// The merge emits "safe windows": with every live run's current block in
// hand, every element no greater than the smallest block-final key is
// globally placeable, so those prefixes are loser-tree merged
// (psort.MergeK) and flushed. Each window fully consumes at least the
// bounding run's block, guaranteeing progress.
//
// Injected read faults are retried under opts.Retry with the same capped
// backoff internal/exec applies to stage attempts. On any exit — success,
// read failure, sink error, cancellation — all fill goroutines are joined
// and all pooled blocks are returned; MergeSpilled never leaks.
//
// Under opts.Elem == ElemKV the run files hold interleaved key/payload
// cells: the read-ahead block is rounded to an even cell count so fills
// never split a record (runs themselves are even by SpillSorted's
// alignment), the safe bound is the smallest block-final *key* cell, the
// prefix cuts land on record boundaries, and the window merge is the
// record loser tree. Sink batches stay []int64 cells either way.
func MergeSpilled(ctx context.Context, store *spill.Store, runs []int, opts ExternalOptions, sink func([]int64) error) (int64, error) {
	if sink == nil {
		return 0, fmt.Errorf("mlmsort: MergeSpilled needs a sink")
	}
	if !opts.Elem.Valid() {
		return 0, fmt.Errorf("mlmsort: unknown element kind %v", opts.Elem)
	}
	if len(runs) == 0 {
		return 0, ctx.Err()
	}
	cells := opts.Elem.cells()
	block := opts.Elem.alignChunk(opts.mergeBlock())
	width := opts.readAhead(len(runs), 1)
	pool := opts.pool()

	mctx, cancel := context.WithCancel(ctx)
	defer cancel()

	getBlock := func(n int) []int64 {
		if s := pool.Get(n); s != nil {
			return s
		}
		// Non-class capacity: the pool drops it on Put instead of adopting
		// a slice its budget never accounted (same trick as exec.newBuffer).
		return make([]int64, n, unpooledCap(n))
	}
	putBlock := func(s []int64) {
		if s != nil {
			pool.Put(s)
		}
	}

	// One fill worker per run, at most width concurrently on the disk.
	fillSlots := make(chan struct{}, width)
	chans := make([]chan spillBlock, len(runs))
	var wg sync.WaitGroup
	for si, id := range runs {
		r, err := store.OpenRun(id)
		if err != nil {
			cancel()
			wg.Wait()
			for _, ch := range chans[:si] {
				for b := range ch {
					putBlock(b.data)
				}
			}
			return 0, err
		}
		ch := make(chan spillBlock, 1) // current block downstream + one staged here
		chans[si] = ch
		wg.Add(1)
		go func(id int, r *spill.RunReader, ch chan spillBlock) {
			defer wg.Done()
			defer close(ch)
			defer r.Close()
			for {
				select {
				case fillSlots <- struct{}{}:
				case <-mctx.Done():
					return
				}
				buf := getBlock(block)
				n, err := fillWithRetry(mctx, r, buf, id, opts)
				<-fillSlots
				if n > 0 {
					select {
					case ch <- spillBlock{data: buf[:n]}:
					case <-mctx.Done():
						putBlock(buf)
						return
					}
				} else {
					putBlock(buf)
				}
				if err == io.EOF {
					return
				}
				if err != nil {
					select {
					case ch <- spillBlock{err: err}:
					case <-mctx.Done():
					}
					return
				}
			}
		}(id, r, ch)
	}

	heads := make([][]int64, len(runs)) // unconsumed portion of current block
	cur := make([][]int64, len(runs))   // current block's backing slice, for recycle
	done := make([]bool, len(runs))
	var out []int64
	var total int64
	cleanup := func() {
		cancel()
		wg.Wait()
		for _, ch := range chans {
			for b := range ch {
				putBlock(b.data)
			}
		}
		for si := range cur {
			putBlock(cur[si])
			cur[si] = nil
		}
		putBlock(out)
	}
	defer cleanup()

	// advance refills run si's head block; afterwards heads[si] is
	// non-empty or done[si] is set.
	advance := func(si int) error {
		if done[si] || len(heads[si]) > 0 {
			return nil
		}
		if cur[si] != nil {
			putBlock(cur[si])
			cur[si] = nil
		}
		select {
		case b, ok := <-chans[si]:
			if !ok {
				done[si] = true
				return nil
			}
			if b.err != nil {
				done[si] = true
				return b.err
			}
			cur[si], heads[si] = b.data, b.data
			return nil
		case <-mctx.Done():
			return mctx.Err()
		}
	}

	prefixes := make([][]int64, 0, len(runs))
	for {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		liveData := false
		for si := range runs {
			if err := advance(si); err != nil {
				return total, err
			}
			if len(heads[si]) > 0 {
				if len(heads[si])%cells != 0 {
					// A record split across fills can only mean the run was
					// written with a different element kind; merging it
					// would interleave keys and payloads.
					return total, fmt.Errorf("mlmsort: run %d block of %d cells is not whole %v elements", runs[si], len(heads[si]), opts.Elem)
				}
				liveData = true
			}
		}
		if !liveData {
			return total, ctx.Err()
		}
		// Safe bound: everything <= the smallest block-final key is in
		// hand. For records the block-final key is the key cell of the
		// last record, one cell before the block end.
		first := true
		var bound int64
		for si := range runs {
			h := heads[si]
			if len(h) == 0 {
				continue
			}
			if last := h[len(h)-cells]; first || last < bound {
				bound, first = last, false
			}
		}
		// Stability across windows (records only): a run whose whole head
		// is <= bound may continue with more ==bound keys in its next
		// block, and any later run emitting ==bound records this window
		// would jump ahead of them. Runs after the first such open run
		// therefore cut strictly below the bound and hold their ==bound
		// records for a later window, where the loser tree restores run
		// order. The open run itself emits its full head, which is what
		// keeps every window making progress. Bare int64 ties are
		// indistinguishable, so the int64 path keeps the inclusive cut.
		openRun := len(runs)
		if opts.Elem == ElemKV {
			for si := range runs {
				if h := heads[si]; len(h) > 0 && h[len(h)-cells] <= bound {
					openRun = si
					break
				}
			}
		}
		prefixes = prefixes[:0]
		sum := 0
		for si := range runs {
			h := heads[si]
			if len(h) == 0 {
				continue
			}
			// The binary search walks elements (record keys live at even
			// cell offsets); the cut converts back to cells so heads and
			// prefixes stay record-aligned.
			above := func(j int) bool { return h[j*cells] > bound }
			if si > openRun {
				above = func(j int) bool { return h[j*cells] >= bound }
			}
			p := sort.Search(len(h)/cells, above) * cells
			if p > 0 {
				prefixes = append(prefixes, h[:p])
				heads[si] = h[p:]
				sum += p
			}
		}
		// One contributing run — the k=1 shape every safe window degenerates
		// to when a single megachunk covered the job — needs no merge at
		// all: the prefix is already the round's sorted output, so it goes
		// to the sink in place instead of being copied through out.
		if len(prefixes) == 1 {
			total += int64(sum)
			if err := sink(prefixes[0]); err != nil {
				return total, err
			}
			continue
		}
		if cap(out) < sum {
			putBlock(out)
			out = getBlock(sum)
		}
		mergeRound(out[:sum], prefixes, opts.MergeThreads, opts.Elem)
		total += int64(sum)
		if err := sink(out[:sum]); err != nil {
			return total, err
		}
	}
}

// parallelMergeMin is the smallest merge round worth fanning out: below
// it the multisequence-selection splits and goroutine joins cost more
// than the loser-tree pass they parallelize.
const parallelMergeMin = 64 << 10

// mergeRound merges one safe window's run prefixes into dst: serial
// loser-tree for small rounds or a single worker, psort.ParallelMergeK
// otherwise, with the fan-out capped so every worker keeps at least
// parallelMergeMin/2 elements of real work. Record rounds always take
// the serial record loser tree — multisequence selection is keyed on
// bare cells and has no record variant.
func mergeRound(dst []int64, prefixes [][]int64, threads int, elem ElemKind) {
	if elem == ElemKV {
		recPrefixes := make([][]psort.KV, len(prefixes))
		for i, p := range prefixes {
			recPrefixes[i] = psort.KVsFromInt64s(p)
		}
		psort.MergeRecordsK(psort.KVsFromInt64s(dst), recPrefixes...)
		return
	}
	if threads > 1 && len(dst) >= parallelMergeMin && len(prefixes) > 1 {
		if max := len(dst) / (parallelMergeMin / 2); threads > max {
			threads = max
		}
		psort.ParallelMergeK(dst, prefixes, threads)
		return
	}
	psort.MergeK(dst, prefixes...)
}

// fillWithRetry drives one read-ahead fill with the exec retry semantics:
// failed attempts back off under opts.Retry and each one is reported to
// opts.Resilience, with the exhausting attempt marked final.
func fillWithRetry(ctx context.Context, r *spill.RunReader, buf []int64, runID int, opts ExternalOptions) (int, error) {
	attempts := opts.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		n, err := r.Fill(buf)
		if err == nil || err == io.EOF {
			return n, err
		}
		retryable := attempt < attempts
		var backoff time.Duration
		if retryable {
			backoff = opts.Retry.Backoff(attempt)
		}
		if opts.Resilience != nil {
			opts.Resilience.ObserveRetry(exec.RetryEvent{
				Stage: exec.StageCopyIn, Chunk: runID, Attempt: attempt,
				Err: err, Backoff: backoff, Final: !retryable,
			})
		}
		if !retryable {
			return 0, &exec.ChunkError{Stage: exec.StageCopyIn, Chunk: runID, Attempts: attempt, Err: err}
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}
