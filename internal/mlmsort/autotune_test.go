package mlmsort

import (
	"context"
	"testing"

	"knlmlm/internal/fault"
	"knlmlm/internal/memkind"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/units"
	"knlmlm/internal/workload"
)

// TestAutotuneReprovisions: with autotuning on, a staged run measures its
// warmup megachunk, solves the model, and applies exactly one
// re-provisioning — visible in the stats, the registry counter, and a
// still-sorted output.
func TestAutotuneReprovisions(t *testing.T) {
	const n, mc = 80_000, 10_000
	xs := workload.Generate(workload.Random, n, 11)
	want := workload.Fingerprint(xs)
	reg := telemetry.NewRegistry()
	stats, err := RunRealResilient(context.Background(), MLMSort, xs, 2, mc, RealOptions{
		Buffers:  3,
		Autotune: &AutotuneOptions{WarmupChunks: 1, Registry: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !workload.IsSorted(xs) || workload.Fingerprint(xs) != want {
		t.Fatal("autotuned run corrupted the data")
	}
	if stats.Retunes != 1 {
		t.Fatalf("stats.Retunes = %d, want 1", stats.Retunes)
	}
	p := stats.TunedPools
	if p.In < 1 || p.Out < 1 || p.Comp < 1 {
		t.Errorf("tuned pools %+v have an empty pool", p)
	}
	if p.In != p.Out {
		t.Errorf("tuned pools %+v are not symmetric", p)
	}
	if total := p.In + p.Out + p.Comp; total != 4 {
		t.Errorf("tuned pools %+v spend %d threads, want the budget 4", p, total)
	}
	if v := reg.Counter("autotune_reprovisions_total", "", nil).Value(); v != 1 {
		t.Errorf("autotune_reprovisions_total = %d, want 1", v)
	}
}

// TestAutotuneIgnoredWithoutCopyPools: the in-place variants have no copy
// pools to re-provision; autotune must be a no-op, not a crash.
func TestAutotuneIgnoredWithoutCopyPools(t *testing.T) {
	const n, mc = 40_000, 10_000
	xs := workload.Generate(workload.Random, n, 13)
	stats, err := RunRealResilient(context.Background(), MLMDDr, xs, 2, mc, RealOptions{
		Autotune: &AutotuneOptions{WarmupChunks: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !workload.IsSorted(xs) {
		t.Fatal("output not sorted")
	}
	if stats.Retunes != 0 {
		t.Errorf("unstaged variant retuned %d times, want 0", stats.Retunes)
	}
}

// TestAutotuneExplicitBudget: a caller-specified thread budget is
// respected by the solve.
func TestAutotuneExplicitBudget(t *testing.T) {
	const n, mc = 60_000, 10_000
	xs := workload.Generate(workload.Random, n, 17)
	stats, err := RunRealResilient(context.Background(), MLMHybrid, xs, 2, mc, RealOptions{
		Autotune: &AutotuneOptions{TotalThreads: 8, MaxCopyIn: 3, WarmupChunks: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !workload.IsSorted(xs) {
		t.Fatal("output not sorted")
	}
	if stats.Retunes != 1 {
		t.Fatalf("stats.Retunes = %d, want 1", stats.Retunes)
	}
	p := stats.TunedPools
	if total := p.In + p.Out + p.Comp; total != 8 {
		t.Errorf("tuned pools %+v spend %d threads, want the budget 8", p, total)
	}
}

// TestAutotuneUnderChaos: re-provisioning mid-run while the chaos
// injector throws errors, panics, latency, allocation failures, and a
// possibly-undersized heap at the pipeline must never cost correctness.
func TestAutotuneUnderChaos(t *testing.T) {
	const n, mc = 60_000, 6_000
	for seed := int64(1); seed <= 8; seed++ {
		xs := workload.Generate(workload.Random, n, seed)
		want := workload.Fingerprint(xs)
		plan := fault.NewPlan(seed, units.BytesForElements(n))
		inj := plan.Injector()
		reg := telemetry.NewRegistry()
		res := telemetry.NewResilience(reg)
		inj.Metrics = res
		stats, err := RunRealResilient(context.Background(), MLMSort, xs, 2, mc, RealOptions{
			Heap:         memkind.NewHeap(plan.HBWCapacity, 1<<42),
			AllocFaults:  inj,
			Resilience:   res,
			Wrap:         inj.Wrap,
			Retry:        plan.Retry,
			ChunkTimeout: plan.ChunkTimeout,
			Buffers:      3,
			Autotune:     &AutotuneOptions{WarmupChunks: 1, Registry: reg},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !workload.IsSorted(xs) || workload.Fingerprint(xs) != want {
			t.Fatalf("seed %d: chaos+autotune corrupted the data (%+v)", seed, stats)
		}
		if stats.Retunes != 1 {
			t.Errorf("seed %d: retunes = %d, want 1", seed, stats.Retunes)
		}
	}
}
