package mlmsort

import (
	"context"
	"errors"
	"testing"

	"knlmlm/internal/exec"
	"knlmlm/internal/memkind"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/units"
	"knlmlm/internal/workload"
)

// failChunks is a deterministic AllocFaults stub.
type failChunks map[int]bool

func (f failChunks) FailAlloc(i int) bool { return f[i] }

func resilienceSink() (*telemetry.Registry, *telemetry.Resilience) {
	reg := telemetry.NewRegistry()
	return reg, telemetry.NewResilience(reg)
}

// TestResilientGenuineExhaustion: a heap smaller than one megachunk fails
// every HBW_POLICY_BIND staging allocation, so every megachunk must
// degrade to the DDR-direct flow — and the sort must still be correct.
func TestResilientGenuineExhaustion(t *testing.T) {
	const n, mc = 40_000, 10_000
	xs := workload.Generate(workload.Random, n, 3)
	want := workload.Fingerprint(xs)
	// Capacity below one megachunk's 80 KB footprint: every bind fails.
	heap := memkind.NewHeap(units.BytesForElements(mc)-1, units.GiB)
	_, res := resilienceSink()
	stats, err := RunRealResilient(context.Background(), MLMSort, xs, 4, mc, RealOptions{
		Heap: heap, Resilience: res,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !workload.IsSorted(xs) || workload.Fingerprint(xs) != want {
		t.Fatal("degraded run corrupted the data")
	}
	if stats.Megachunks != 4 || stats.Degraded != 4 || stats.Staged != 0 {
		t.Errorf("stats = %+v, want 4 megachunks all degraded", stats)
	}
	if stats.AllocFailures < 4 {
		t.Errorf("alloc failures = %d, want >= 4", stats.AllocFailures)
	}
	if got := res.Degradations(); got != 4 {
		t.Errorf("telemetry degradations = %d, want 4", got)
	}
	if heap.HBWInUse() != 0 {
		t.Errorf("heap leak: %v still in use", heap.HBWInUse())
	}
}

// TestResilientAmpleHeap: with room for every staged buffer, nothing
// degrades and the heap is fully released afterwards.
func TestResilientAmpleHeap(t *testing.T) {
	const n, mc = 40_000, 10_000
	xs := workload.Generate(workload.Reverse, n, 1)
	heap := memkind.NewHeap(units.GiB, units.GiB)
	stats, err := RunRealResilient(context.Background(), MLMHybrid, xs, 4, mc, RealOptions{
		Heap: heap, Buffers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !workload.IsSorted(xs) {
		t.Fatal("not sorted")
	}
	if stats.Degraded != 0 || stats.Staged != 4 || stats.AllocFailures != 0 {
		t.Errorf("stats = %+v, want all 4 staged", stats)
	}
	if heap.HBWInUse() != 0 {
		t.Errorf("heap leak: %v still in use", heap.HBWInUse())
	}
}

// TestResilientInjectedAllocFaults: injected allocation failures degrade
// exactly the targeted megachunks.
func TestResilientInjectedAllocFaults(t *testing.T) {
	const n, mc = 40_000, 10_000
	xs := workload.Generate(workload.Random, n, 7)
	want := workload.Fingerprint(xs)
	heap := memkind.NewHeap(units.GiB, units.GiB)
	_, res := resilienceSink()
	stats, err := RunRealResilient(context.Background(), MLMSort, xs, 4, mc, RealOptions{
		Heap: heap, AllocFaults: failChunks{1: true, 3: true}, Resilience: res,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !workload.IsSorted(xs) || workload.Fingerprint(xs) != want {
		t.Fatal("run with injected alloc faults corrupted the data")
	}
	if stats.Degraded != 2 || stats.Staged != 2 {
		t.Errorf("stats = %+v, want 2 degraded / 2 staged", stats)
	}
	if got := res.Degradations(); got != 2 {
		t.Errorf("telemetry degradations = %d, want 2", got)
	}
	if got := res.Completions(); got != 1 {
		t.Errorf("completions = %d, want 1", got)
	}
}

// TestResilientRetry: a transient compute fault is retried away; the
// retry is visible in the resilience counters and the sort is correct.
func TestResilientRetry(t *testing.T) {
	const n, mc = 20_000, 5_000
	xs := workload.Generate(workload.Random, n, 11)
	_, res := resilienceSink()
	failed := false
	stats, err := RunRealResilient(context.Background(), MLMSort, xs, 4, mc, RealOptions{
		Resilience: res,
		Retry:      exec.DefaultRetry,
		Wrap: func(s exec.Stages) exec.Stages {
			inner := s.Compute
			s.Compute = func(i int, buf []int64) error {
				if i == 1 && !failed {
					failed = true
					return errors.New("transient")
				}
				return inner(i, buf)
			}
			return s
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !workload.IsSorted(xs) {
		t.Fatal("not sorted")
	}
	if stats.Staged != 4 {
		t.Errorf("stats = %+v, want 4 staged", stats)
	}
	if res.Retries() != 1 || res.Failures() != 0 {
		t.Errorf("retries/failures = %d/%d, want 1/0", res.Retries(), res.Failures())
	}
	if res.Completions() != 1 || res.Aborts() != 0 {
		t.Errorf("completions/aborts = %d/%d, want 1/0", res.Completions(), res.Aborts())
	}
}

// TestResilientCancellation: cancelling mid-run returns context.Canceled,
// releases every staging allocation, and books a cancellation outcome.
func TestResilientCancellation(t *testing.T) {
	const n, mc = 40_000, 5_000
	xs := workload.Generate(workload.Random, n, 13)
	heap := memkind.NewHeap(units.GiB, units.GiB)
	_, res := resilienceSink()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunRealResilient(ctx, MLMSort, xs, 4, mc, RealOptions{
		Heap: heap, Resilience: res, Buffers: 3,
		Wrap: func(s exec.Stages) exec.Stages {
			inner := s.Compute
			s.Compute = func(i int, buf []int64) error {
				if i == 2 {
					cancel()
				}
				return inner(i, buf)
			}
			return s
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if heap.HBWInUse() != 0 {
		t.Errorf("cancelled run leaked %v of staging heap", heap.HBWInUse())
	}
	if res.Cancellations() != 1 {
		t.Errorf("cancellations = %d, want 1", res.Cancellations())
	}
}

// TestResilientAbortSurfacesChunkError: with no retry budget, a stage
// failure aborts with a ChunkError and books an abort outcome.
func TestResilientAbortSurfacesChunkError(t *testing.T) {
	const n, mc = 20_000, 5_000
	xs := workload.Generate(workload.Random, n, 17)
	_, res := resilienceSink()
	boom := errors.New("boom")
	_, err := RunRealResilient(context.Background(), MLMSort, xs, 4, mc, RealOptions{
		Resilience: res,
		Wrap: func(s exec.Stages) exec.Stages {
			inner := s.CopyOut
			s.CopyOut = func(i int, buf []int64) error {
				if i == 1 {
					return boom
				}
				return inner(i, buf)
			}
			return s
		},
	})
	var ce *exec.ChunkError
	if !errors.As(err, &ce) || !errors.Is(err, boom) {
		t.Fatalf("got %v, want ChunkError wrapping boom", err)
	}
	if ce.Stage != exec.StageCopyOut || ce.Chunk != 1 {
		t.Errorf("failed at %v chunk %d, want copy-out chunk 1", ce.Stage, ce.Chunk)
	}
	if res.Aborts() != 1 {
		t.Errorf("aborts = %d, want 1", res.Aborts())
	}
}
