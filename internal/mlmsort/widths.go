package mlmsort

import (
	"sync/atomic"

	"knlmlm/internal/model"
)

// WidthControl lets an external owner — the job scheduler sharing one
// machine between concurrent sorts — adjust a staged run's copy and
// compute pool widths while the run executes. The run reads the widths
// at every megachunk boundary, so a SetPools lands within one megachunk.
//
// When a run also autotunes, the tuner writes its solved split through
// the same control, so the scheduler observes (and can override) what the
// run settled on. The zero value is not usable; construct with
// NewWidthControl.
type WidthControl struct {
	copyIn atomic.Int32
	comp   atomic.Int32
}

// NewWidthControl returns a control pre-set to the given split.
func NewWidthControl(p model.Pools) *WidthControl {
	w := &WidthControl{}
	w.SetPools(p)
	return w
}

// SetPools applies a solved Equation 1-5 split: In is the copy width both
// ways (the staged pipeline copies in and out at the same width), Comp
// the megachunk sort's worker count. Non-positive fields leave the
// corresponding width unchanged, so a partial prediction cannot zero out
// a pool.
func (w *WidthControl) SetPools(p model.Pools) {
	if p.In > 0 {
		w.copyIn.Store(int32(p.In))
	}
	if p.Comp > 0 {
		w.comp.Store(int32(p.Comp))
	}
}

// Pools reports the current widths (Out mirrors In).
func (w *WidthControl) Pools() model.Pools {
	in := int(w.copyIn.Load())
	return model.Pools{In: in, Out: in, Comp: int(w.comp.Load())}
}
