package mlmsort

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"knlmlm/internal/psort"
)

// recordJob builds an interleaved key/payload cell buffer with
// dup-heavy keys and payload = original record index, so a stability
// violation anywhere in the pipeline is visible as a payload swap.
func recordJob(rng *rand.Rand, records int) []int64 {
	xs := make([]int64, 2*records)
	for i := 0; i < records; i++ {
		xs[2*i] = rng.Int63n(64) // few distinct keys: long tied runs
		xs[2*i+1] = int64(i)
	}
	return xs
}

// sortedRecordsRef is the stable reference: the same cells through
// slices.SortStableFunc on the record view.
func sortedRecordsRef(xs []int64) []int64 {
	ref := slices.Clone(xs)
	slices.SortStableFunc(psort.KVsFromInt64s(ref), func(a, b psort.KV) int {
		switch {
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		}
		return 0
	})
	return ref
}

// TestRecordRunRealResilient runs record jobs through every MLM variant
// and checks the output cell-for-cell against the stable reference —
// block sorts, megachunk merges, and the final merge must all preserve
// record integrity and first-appearance order of equal keys.
func TestRecordRunRealResilient(t *testing.T) {
	for _, a := range []Algorithm{MLMDDr, MLMSort, MLMImplicit, MLMHybrid} {
		t.Run(a.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			xs := recordJob(rng, 3000)
			want := sortedRecordsRef(xs)
			// Odd megachunk length: the run must align it up to whole
			// records instead of splitting one across a boundary.
			stats, err := RunRealResilient(context.Background(), a, xs, 3, 777, RealOptions{Elem: ElemKV})
			if err != nil {
				t.Fatalf("RunRealResilient: %v", err)
			}
			if a != MLMImplicit && stats.Megachunks < 2 {
				t.Fatalf("megachunks = %d, want multi-megachunk coverage", stats.Megachunks)
			}
			if !slices.Equal(xs, want) {
				for i := range xs {
					if xs[i] != want[i] {
						t.Fatalf("cell %d: got %d want %d", i, xs[i], want[i])
					}
				}
			}
		})
	}
}

// TestRecordElemValidation pins the fail-fast paths: record jobs reject
// odd cell counts and the algorithms that have no record data flow.
func TestRecordElemValidation(t *testing.T) {
	odd := []int64{3, 0, 1}
	if _, err := RunRealResilient(context.Background(), MLMSort, odd, 1, 0, RealOptions{Elem: ElemKV}); err == nil {
		t.Error("odd cell count accepted for ElemKV")
	}
	even := recordJob(rand.New(rand.NewSource(1)), 128)
	for _, a := range []Algorithm{GNUFlat, GNUCache, GNUPreferred, BasicChunked} {
		if _, err := RunRealResilient(context.Background(), a, slices.Clone(even), 2, 0, RealOptions{Elem: ElemKV}); err == nil {
			t.Errorf("%v accepted ElemKV; it has no record kernels", a)
		}
	}
	if _, err := RunRealResilient(context.Background(), MLMSort, odd, 1, 0, RealOptions{Elem: ElemKind(9)}); err == nil {
		t.Error("unknown ElemKind accepted")
	}
	if _, _, err := SpillSorted(context.Background(), MLMDDr, odd, 1, 0, ExternalOptions{RealOptions: RealOptions{Elem: ElemKV}}); err == nil {
		t.Error("SpillSorted accepted odd cell count for ElemKV")
	}
}

// TestRecordExternalSpill drives record jobs through the full
// out-of-core path — spill to run files, k-way safe-window merge back —
// with a deliberately odd merge block so the record alignment of the
// read-ahead fills is exercised, and checks the streamed batches are
// whole records that concatenate to the stable reference.
func TestRecordExternalSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	xs := recordJob(rng, 5000)
	want := sortedRecordsRef(xs)

	var streamed []int64
	sink := func(batch []int64) error {
		if len(batch)%2 != 0 {
			t.Fatalf("sink batch of %d cells splits a record", len(batch))
		}
		streamed = append(streamed, batch...)
		return nil
	}
	opts := ExternalOptions{
		RealOptions: RealOptions{Elem: ElemKV},
		SpillDir:    t.TempDir(),
		MergeBlock:  513, // odd: MergeSpilled must round it to whole records
		Sink:        sink,
	}
	stats, err := RunRealExternal(context.Background(), MLMSort, xs, 2, 1000, opts)
	if err != nil {
		t.Fatalf("RunRealExternal: %v", err)
	}
	if stats.Runs < 2 {
		t.Fatalf("runs = %d, want a real k-way merge", stats.Runs)
	}
	if stats.MergedElems != int64(len(want)) {
		t.Fatalf("merged %d cells, want %d", stats.MergedElems, len(want))
	}
	if !slices.Equal(streamed, want) {
		for i := range want {
			if streamed[i] != want[i] {
				t.Fatalf("cell %d: got %d want %d", i, streamed[i], want[i])
			}
		}
	}

	// Write-back shape (no sink): the in-place xs must match too.
	xs2 := recordJob(rng, 2048)
	want2 := sortedRecordsRef(xs2)
	opts.Sink = nil
	if _, err := RunRealExternal(context.Background(), MLMDDr, xs2, 2, 700, opts); err != nil {
		t.Fatalf("RunRealExternal write-back: %v", err)
	}
	if !slices.Equal(xs2, want2) {
		t.Fatal("write-back record sort diverges from stable reference")
	}
}
