package mlmsort

import (
	"fmt"

	"knlmlm/internal/core"
	"knlmlm/internal/knl"
	"knlmlm/internal/mem"
	"knlmlm/internal/memkind"
	"knlmlm/internal/units"
	"knlmlm/internal/workload"
)

// Algorithm identifies one of the evaluated sort variants.
type Algorithm int

const (
	// GNUFlat is GNU parallel sort with all data in DDR (flat mode,
	// MCDRAM unused) — the paper's baseline.
	GNUFlat Algorithm = iota
	// GNUCache is GNU parallel sort in hardware cache mode.
	GNUCache
	// MLMDDr is MLM-sort's structure run entirely out of DDR.
	MLMDDr
	// MLMSort is MLM-sort in flat mode with explicit staging to MCDRAM.
	MLMSort
	// MLMImplicit runs the chunked algorithm in hardware cache mode with
	// megachunk size equal to the problem size — the paper's implicit
	// cache mode.
	MLMImplicit
	// BasicChunked is the algorithm of Bender et al.: chunk into
	// MCDRAM-sized pieces, sort each chunk with the *parallel* sort, then
	// multiway merge. Evaluated in flat mode.
	BasicChunked
	// MLMHybrid runs MLM-sort in hybrid mode (half scratchpad, half
	// cache): identical staging to MLM-sort but with megachunks limited to
	// the smaller scratchpad partition. The paper ran this configuration
	// and reported it "near identical performance to flat, given a chunk
	// size" — this variant reproduces that claim (extension; not a Table 1
	// column).
	MLMHybrid
	// GNUPreferred is GNU parallel sort in flat mode with the arrays
	// allocated under numactl --preferred / HBW_POLICY_PREFERRED: MCDRAM
	// fills first, the remainder spills to DDR. This is the Li et al.
	// (SC'17) flat-mode configuration the paper's related-work section
	// contrasts with chunking (extension; not a Table 1 column).
	GNUPreferred
)

var algNames = map[Algorithm]string{
	GNUFlat:      "GNU-flat",
	GNUCache:     "GNU-cache",
	MLMDDr:       "MLM-ddr",
	MLMSort:      "MLM-sort",
	MLMImplicit:  "MLM-implicit",
	BasicChunked: "Basic-chunked",
	MLMHybrid:    "MLM-hybrid",
	GNUPreferred: "GNU-preferred",
}

// String reports the paper's name for the algorithm.
func (a Algorithm) String() string {
	if s, ok := algNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Algorithms lists the paper's five Table 1 variants in report order.
func Algorithms() []Algorithm {
	return []Algorithm{GNUFlat, GNUCache, MLMDDr, MLMSort, MLMImplicit}
}

// Mode reports the MCDRAM mode the variant runs under.
func (a Algorithm) Mode() mem.Mode {
	switch a {
	case GNUCache, MLMImplicit:
		return mem.Cache
	case MLMHybrid:
		return mem.Hybrid
	default:
		return mem.Flat
	}
}

// Config describes one sort run.
type Config struct {
	// Elements is the problem size N (int64 keys).
	Elements int64
	// Order is the input distribution.
	Order workload.Order
	// Threads is the thread budget (the paper uses 256).
	Threads int
	// MegachunkElements is the MLM megachunk size. Zero selects the
	// paper's choice: 1 G elements (1.5 G at 6 G) for MLM-sort/MLM-ddr,
	// and the whole problem for MLM-implicit.
	MegachunkElements int64
	// Cal carries the cost-model constants.
	Cal Calibration
}

// PaperSortConfig returns the Table 1 configuration for a problem size and
// input order.
func PaperSortConfig(elements int64, order workload.Order) Config {
	return Config{
		Elements: elements,
		Order:    order,
		Threads:  256,
		Cal:      DefaultCalibration(),
	}
}

// Validate reports whether the config is runnable.
func (c Config) Validate() error {
	if c.Elements <= 0 {
		return fmt.Errorf("mlmsort: elements %d must be positive", c.Elements)
	}
	if c.Threads <= 0 {
		return fmt.Errorf("mlmsort: threads %d must be positive", c.Threads)
	}
	if c.MegachunkElements < 0 {
		return fmt.Errorf("mlmsort: negative megachunk size %d", c.MegachunkElements)
	}
	return c.Cal.Validate()
}

// megachunk resolves the megachunk size for the algorithm: the paper uses
// 1 G elements (1.5 G for the 6 G runs) for the staged variants, and the
// whole problem for MLM-implicit.
func (c Config) megachunk(a Algorithm) int64 {
	if c.MegachunkElements > 0 {
		return c.MegachunkElements
	}
	if a == MLMImplicit {
		return c.Elements
	}
	mc := int64(1_000_000_000)
	if c.Elements >= 6_000_000_000 {
		mc = 1_500_000_000
	}
	if a == MLMHybrid {
		// Hybrid mode halves the scratchpad; megachunks must fit the
		// partition (50% of 16 GiB holds 1.07 G elements).
		if limit := units.ElementsForBytes(8 * units.GiB); mc > limit {
			mc = limit
		}
	}
	if c.Elements < mc {
		return c.Elements
	}
	return mc
}

// Plan builds the simulated phase plan for an algorithm. The machine's
// mode must match a.Mode().
func Plan(m *knl.Machine, a Algorithm, c Config) *core.Plan {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	if got := m.Config().Mode.Mode; got != a.Mode() {
		panic(fmt.Sprintf("mlmsort: %v needs mode %v, machine is in %v", a, a.Mode(), got))
	}
	switch a {
	case GNUFlat:
		return c.gnuPlan(m, core.DDRPlaced)
	case GNUCache:
		return c.gnuPlan(m, core.CacheManaged)
	case GNUPreferred:
		return c.gnuPreferredPlan(m)
	case MLMDDr, MLMSort, MLMImplicit, MLMHybrid:
		return c.mlmPlan(m, a)
	case BasicChunked:
		return c.basicChunkedPlan(m)
	default:
		panic(fmt.Sprintf("mlmsort: unknown algorithm %v", a))
	}
}

// gnuPlan models GNU parallel mode sort (multiway mergesort): p local
// sorts, one parallel p-way merge into a temporary, and a copy back.
func (c Config) gnuPlan(m *knl.Machine, place core.Placement) *core.Plan {
	_, fComparison := orderFactors(c.Order)
	factor := fComparison * c.Cal.GNUWorkInflation
	perThread := c.Elements / int64(c.Threads)
	if perThread < 1 {
		perThread = 1
	}
	b := units.BytesForElements(c.Elements)

	plan := &core.Plan{Name: "GNU/" + place.String()}
	for _, k := range c.Cal.serialSortKernels(m, "local-sort", c.Threads, perThread, place, factor, false) {
		plan.Steps = append(plan.Steps, &core.KernelStep{Name: k.Label, Kernels: []core.Kernel{k}})
	}
	merge := c.Cal.mergeKernel(m, "multiway-merge", c.Threads, c.Threads, b, place, place, false)
	plan.Steps = append(plan.Steps, &core.KernelStep{Name: merge.Label, Kernels: []core.Kernel{merge}})

	// Copy back from the merge temporary: pure streaming at copy rates.
	// Touched-byte accounting: a copy thread moving SCopy payload touches
	// 2*SCopy bytes per second.
	copyBack := core.Kernel{
		Label:         "copy-back",
		Threads:       c.Threads,
		PerThread:     units.BytesPerSec(2 * float64(c.Cal.SCopy)),
		Passes:        1,
		WorkingSet:    b,
		WriteFraction: 0.5,
		Placement:     place,
	}
	plan.Steps = append(plan.Steps, &core.KernelStep{Name: copyBack.Label, Kernels: []core.Kernel{copyBack}})
	return plan
}

// gnuPreferredPlan models GNU parallel sort with numactl --preferred
// allocation (the Li et al. flat-mode configuration): the sort array fills
// MCDRAM first and spills to DDR; the merge temporary is allocated after
// the array and lands wherever is left (DDR for problems at or beyond
// MCDRAM capacity). Kernels see BlendedPlaced data at the measured HBW
// fraction.
func (c Config) gnuPreferredPlan(m *knl.Machine) *core.Plan {
	_, fComparison := orderFactors(c.Order)
	factor := fComparison * c.Cal.GNUWorkInflation
	perThread := c.Elements / int64(c.Threads)
	if perThread < 1 {
		perThread = 1
	}
	b := units.BytesForElements(c.Elements)

	// Place the two arrays through the policy heap.
	cfg := m.Config()
	heap := memkind.HeapFor(cfg.Memory, cfg.Mode)
	data, err := heap.Alloc(memkind.PolicyHBWPreferred, b, 0)
	if err != nil {
		panic(fmt.Sprintf("mlmsort: preferred data allocation failed: %v", err))
	}
	temp, err := heap.Alloc(memkind.PolicyHBWPreferred, b, 0)
	if err != nil {
		panic(fmt.Sprintf("mlmsort: preferred temp allocation failed: %v", err))
	}
	dataFrac := data.HBWFraction()
	tempFrac := temp.HBWFraction()
	heap.Free(temp)
	heap.Free(data)

	plan := &core.Plan{Name: "GNU-preferred"}
	// Local sorts stream the data array in place.
	sortKernel := c.Cal.serialSortKernels(m, "local-sort", c.Threads, perThread,
		core.DDRPlaced, factor, false)[0]
	sortKernel.Placement = core.BlendedPlaced
	sortKernel.HBWFraction = dataFrac
	// The blended per-thread rate: the DDR-resident share pays the latency
	// penalty.
	blend := dataFrac + (1-dataFrac)/c.Cal.DDRLatencyPenalty
	sortKernel.PerThread = units.BytesPerSec(float64(c.Cal.SSerial) / blend)
	plan.Steps = append(plan.Steps, &core.KernelStep{Name: sortKernel.Label, Kernels: []core.Kernel{sortKernel}})

	// Multiway merge reads the data array, writes the temporary.
	merge := c.Cal.mergeKernel(m, "multiway-merge", c.Threads, c.Threads, b,
		core.BlendedPlaced, core.BlendedPlaced, false)
	merge.HBWFraction = dataFrac // approximation: one fraction for both sides
	if tempFrac < dataFrac {
		merge.HBWFraction = (dataFrac + tempFrac) / 2
	}
	plan.Steps = append(plan.Steps, &core.KernelStep{Name: merge.Label, Kernels: []core.Kernel{merge}})

	copyBack := core.Kernel{
		Label:         "copy-back",
		Threads:       c.Threads,
		PerThread:     units.BytesPerSec(2 * float64(c.Cal.SCopy)),
		Passes:        1,
		WorkingSet:    b,
		WriteFraction: 0.5,
		Placement:     core.BlendedPlaced,
		HBWFraction:   (dataFrac + tempFrac) / 2,
	}
	plan.Steps = append(plan.Steps, &core.KernelStep{Name: copyBack.Label, Kernels: []core.Kernel{copyBack}})
	return plan
}

// mlmPlan models the MLM-sort family: per megachunk, (optional copy-in,)
// per-thread serial sorts, then a parallel multiway merge of the
// megachunk's runs to its output location; finally a K-way merge across
// megachunks when K > 1.
func (c Config) mlmPlan(m *knl.Machine, a Algorithm) *core.Plan {
	fSerial, _ := orderFactors(c.Order)
	mcElems := c.megachunk(a)
	k := int((c.Elements + mcElems - 1) / mcElems)
	if k < 1 {
		k = 1
	}
	plan := &core.Plan{Name: a.String()}

	for mc := 0; mc < k; mc++ {
		elems := mcElems
		if mc == k-1 {
			if rem := c.Elements - int64(k-1)*mcElems; rem > 0 {
				elems = rem
			}
		}
		mcBytes := units.BytesForElements(elems)
		perThread := elems / int64(c.Threads)
		if perThread < 1 {
			perThread = 1
		}
		prefix := fmt.Sprintf("mc%d/", mc)

		var sortPlace core.Placement
		staged := false
		switch a {
		case MLMSort, MLMHybrid:
			// Explicit copy-in DDR -> MCDRAM by all threads. Allocating
			// the staging block from the machine's scratchpad enforces the
			// flat-mode capacity limit on megachunk size (Section 4.2: the
			// chunk size "is ultimately limited by the size of the
			// MCDRAM").
			block, err := m.Scratchpad().Alloc(mcBytes)
			if err != nil {
				panic(fmt.Sprintf("mlmsort: megachunk of %v does not fit flat-mode MCDRAM: %v", mcBytes, err))
			}
			// Megachunks are staged one at a time; release before the next
			// iteration constructs its steps.
			m.Scratchpad().Free(block)
			plan.Steps = append(plan.Steps, &core.KernelStep{
				Name:    prefix + "copy-in",
				Kernels: []core.Kernel{c.copyInKernel(prefix+"copy-in", mcBytes)},
			})
			sortPlace = core.ScratchpadPlaced
			staged = true
		case MLMImplicit:
			sortPlace = core.CacheManaged
		default: // MLMDDr
			sortPlace = core.DDRPlaced
		}

		for _, kn := range c.Cal.serialSortKernels(m, prefix+"serial-sort", c.Threads, perThread, sortPlace, fSerial, staged) {
			plan.Steps = append(plan.Steps, &core.KernelStep{Name: kn.Label, Kernels: []core.Kernel{kn}})
		}

		// Megachunk merge: the chunk's c.Threads sorted runs merge to the
		// output area (DDR for the staged variants; through the cache for
		// implicit).
		var mergeSrc, mergeDst core.Placement
		mergeStaged := false
		switch a {
		case MLMSort, MLMHybrid:
			mergeSrc, mergeDst, mergeStaged = core.ScratchpadPlaced, core.DDRPlaced, true
		case MLMImplicit:
			mergeSrc, mergeDst = core.CacheManaged, core.CacheManaged
		default:
			mergeSrc, mergeDst = core.DDRPlaced, core.DDRPlaced
		}
		mk := c.Cal.mergeKernel(m, prefix+"megachunk-merge", c.Threads, c.Threads, mcBytes, mergeSrc, mergeDst, mergeStaged)
		plan.Steps = append(plan.Steps, &core.KernelStep{Name: mk.Label, Kernels: []core.Kernel{mk}})
	}

	// Final K-way merge across megachunks ("does not use the chunking
	// mechanisms or even explicitly take advantage of the MCDRAM").
	if k > 1 {
		place := core.DDRPlaced
		if a == MLMImplicit {
			place = core.CacheManaged
		}
		fm := c.Cal.mergeKernel(m, "final-merge", c.Threads, k,
			units.BytesForElements(c.Elements), place, place, false)
		plan.Steps = append(plan.Steps, &core.KernelStep{Name: fm.Label, Kernels: []core.Kernel{fm}})
	}
	return plan
}

// basicChunkedPlan models Bender et al.'s algorithm: MCDRAM-sized chunks
// sorted with the *parallel* sort (copy-in, GNU-style sort in MCDRAM, the
// chunk's merge writing back to DDR), then a final multiway merge. Its
// distinguishing cost is that the in-chunk sort inherits the parallel
// library's inflation — which is why it fails to beat GNU-cache, as the
// paper found.
func (c Config) basicChunkedPlan(m *knl.Machine) *core.Plan {
	_, fComparison := orderFactors(c.Order)
	factor := fComparison * c.Cal.GNUWorkInflation
	mcElems := c.megachunk(BasicChunked)
	k := int((c.Elements + mcElems - 1) / mcElems)
	plan := &core.Plan{Name: "Basic-chunked"}

	for mc := 0; mc < k; mc++ {
		elems := mcElems
		if mc == k-1 {
			if rem := c.Elements - int64(k-1)*mcElems; rem > 0 {
				elems = rem
			}
		}
		mcBytes := units.BytesForElements(elems)
		perThread := elems / int64(c.Threads)
		if perThread < 1 {
			perThread = 1
		}
		prefix := fmt.Sprintf("mc%d/", mc)

		block, err := m.Scratchpad().Alloc(mcBytes)
		if err != nil {
			panic(fmt.Sprintf("mlmsort: chunk of %v does not fit flat-mode MCDRAM: %v", mcBytes, err))
		}
		m.Scratchpad().Free(block) // chunks are staged one at a time
		plan.Steps = append(plan.Steps, &core.KernelStep{
			Name:    prefix + "copy-in",
			Kernels: []core.Kernel{c.copyInKernel(prefix+"copy-in", mcBytes)},
		})
		for _, kn := range c.Cal.serialSortKernels(m, prefix+"local-sort", c.Threads, perThread, core.ScratchpadPlaced, factor, true) {
			plan.Steps = append(plan.Steps, &core.KernelStep{Name: kn.Label, Kernels: []core.Kernel{kn}})
		}
		mk := c.Cal.mergeKernel(m, prefix+"chunk-merge", c.Threads, c.Threads, mcBytes,
			core.ScratchpadPlaced, core.DDRPlaced, true)
		plan.Steps = append(plan.Steps, &core.KernelStep{Name: mk.Label, Kernels: []core.Kernel{mk}})
	}
	if k > 1 {
		fm := c.Cal.mergeKernel(m, "final-merge", c.Threads, k,
			units.BytesForElements(c.Elements), core.DDRPlaced, core.DDRPlaced, false)
		plan.Steps = append(plan.Steps, &core.KernelStep{Name: fm.Label, Kernels: []core.Kernel{fm}})
	}
	return plan
}

func placementPtr(p core.Placement) *core.Placement { return &p }

// copyInKernel models an all-threads DDR -> MCDRAM staging copy in
// touched-byte accounting: each payload byte is one DDR read plus one
// MCDRAM write (touched = 2 x payload), and a copy thread moving SCopy
// payload touches 2*SCopy bytes per second.
func (c Config) copyInKernel(label string, payload units.Bytes) core.Kernel {
	return core.Kernel{
		Label:         label,
		Threads:       c.Threads,
		PerThread:     units.BytesPerSec(2 * float64(c.Cal.SCopy)),
		Passes:        1,
		WorkingSet:    payload,
		WriteFraction: 0.5,
		Placement:     core.DDRPlaced,
		DestPlacement: placementPtr(core.ScratchpadPlaced),
	}
}

// Machine builds the paper's machine in the algorithm's required mode.
func (a Algorithm) Machine() *knl.Machine {
	return knl.MustNew(knl.PaperConfig(a.Mode()))
}
