package mlmsort

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"knlmlm/internal/exec"
	"knlmlm/internal/psort"
	"knlmlm/internal/spill"
	"knlmlm/internal/telemetry"
)

// externalTestSeed returns the deterministic seed the randomized external
// tests run with, overridable via MLMSORT_TEST_SEED to reproduce a logged
// failure.
func externalTestSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260805)
	if s := os.Getenv("MLMSORT_TEST_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad MLMSORT_TEST_SEED %q: %v", s, err)
		}
		seed = v
	}
	return seed
}

// adversarialInputs builds the adversarial input families kernel bugs
// hide in: value collapse, run-boundary patterns, extreme keys, and
// pre-existing order in both directions.
func adversarialInputs(n int, rng *rand.Rand) map[string][]int64 {
	in := map[string][]int64{
		"all-equal":  make([]int64, n),
		"sawtooth":   make([]int64, n),
		"organ-pipe": make([]int64, n),
		"min-int64":  make([]int64, n),
		"sorted":     make([]int64, n),
		"reversed":   make([]int64, n),
		"dup-heavy":  make([]int64, n),
		"random":     make([]int64, n),
	}
	for i := 0; i < n; i++ {
		in["all-equal"][i] = 42
		in["sawtooth"][i] = int64(i % 17)
		if i < n/2 {
			in["organ-pipe"][i] = int64(i)
		} else {
			in["organ-pipe"][i] = int64(n - i)
		}
		in["min-int64"][i] = math.MinInt64 + int64(i%3)
		in["sorted"][i] = int64(i)
		in["reversed"][i] = int64(n - i)
		in["dup-heavy"][i] = rng.Int63n(4)
		in["random"][i] = rng.Int63() - rng.Int63()
	}
	// A couple of exact extremes so overflow-prone comparisons trip.
	if n >= 4 {
		in["min-int64"][0] = math.MinInt64
		in["min-int64"][n-1] = math.MaxInt64
		in["random"][n/2] = math.MinInt64
		in["random"][n/3] = math.MaxInt64
	}
	return in
}

// TestRunRealExternalDifferential is the three-way differential required
// by the spill tier: the out-of-core path must agree byte-for-byte with
// both the in-memory MLM path and the standard library on adversarial
// inputs, at a megachunk size forcing well over three spill runs.
func TestRunRealExternalDifferential(t *testing.T) {
	seed := externalTestSeed(t)
	defer func() {
		if t.Failed() {
			t.Logf("seed=%d", seed)
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	const n = 5000
	const mc = 1024 // ceil(5000/1024) = 5 spill runs
	for _, alg := range []Algorithm{MLMSort, MLMDDr} {
		for name, input := range adversarialInputs(n, rng) {
			want := append([]int64(nil), input...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

			inMem := append([]int64(nil), input...)
			if err := RunReal(alg, inMem, 3, mc); err != nil {
				t.Fatalf("%v/%s: RunReal: %v", alg, name, err)
			}
			ext := append([]int64(nil), input...)
			stats, err := RunRealExternal(context.Background(), alg, ext, 3, mc, ExternalOptions{
				RealOptions: RealOptions{Buffers: 2},
				MergeBlock:  257, // non-power-of-two, smaller than a run
			})
			if err != nil {
				t.Fatalf("%v/%s: RunRealExternal: %v", alg, name, err)
			}
			if stats.Runs < 3 {
				t.Fatalf("%v/%s: only %d spill runs; differential needs >= 3", alg, name, stats.Runs)
			}
			if stats.MergedElems != n {
				t.Fatalf("%v/%s: merged %d elems, want %d", alg, name, stats.MergedElems, n)
			}
			for i := range want {
				if inMem[i] != want[i] {
					t.Fatalf("%v/%s: in-memory diverges from sort.Slice at %d: %d != %d",
						alg, name, i, inMem[i], want[i])
				}
				if ext[i] != want[i] {
					t.Fatalf("%v/%s: external diverges from sort.Slice at %d: %d != %d",
						alg, name, i, ext[i], want[i])
				}
			}
		}
	}
}

// TestMergeRoundParallelMatchesSerial is the differential for the merge
// fan-out: above the parallelMergeMin threshold mergeRound must produce
// exactly what the serial loser tree does, for several run counts and
// ragged run lengths.
func TestMergeRoundParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(externalTestSeed(t)))
	for _, k := range []int{2, 3, 7} {
		per := parallelMergeMin/k + 1
		runs := make([][]int64, k)
		sum := 0
		for i := range runs {
			n := per + rng.Intn(257) // ragged, total past the threshold
			r := make([]int64, n)
			for j := range r {
				r[j] = rng.Int63() - rng.Int63()
			}
			sort.Slice(r, func(a, b int) bool { return r[a] < r[b] })
			runs[i] = r
			sum += n
		}
		want := make([]int64, sum)
		psort.MergeK(want, runs...)
		got := make([]int64, sum)
		mergeRound(got, runs, 4, ElemInt64)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: parallel round diverges at %d: %d != %d", k, i, got[i], want[i])
			}
		}
	}
}

// TestRunRealExternalParallelMerge runs the out-of-core path with merge
// fan-out enabled at a size whose safe windows clear parallelMergeMin,
// so the parallel rounds are exercised end to end.
func TestRunRealExternalParallelMerge(t *testing.T) {
	seed := externalTestSeed(t)
	rng := rand.New(rand.NewSource(seed))
	const n = 200000
	input := make([]int64, n)
	for i := range input {
		input[i] = rng.Int63() - rng.Int63()
	}
	want := append([]int64(nil), input...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	ext := append([]int64(nil), input...)
	stats, err := RunRealExternal(context.Background(), MLMSort, ext, 3, 16384, ExternalOptions{
		RealOptions:  RealOptions{Buffers: 2},
		MergeThreads: 4,
	})
	if err != nil {
		t.Fatalf("RunRealExternal: %v", err)
	}
	if stats.Runs < 3 {
		t.Fatalf("only %d runs; the parallel merge needs a real fan-in", stats.Runs)
	}
	for i := range want {
		if ext[i] != want[i] {
			t.Fatalf("seed=%d: diverges from sort.Slice at %d: %d != %d", seed, i, ext[i], want[i])
		}
	}
}

func TestSpillSortedWritesSortedRuns(t *testing.T) {
	st, err := spill.NewStore(spill.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	defer st.Close()
	seed := externalTestSeed(t)
	defer func() {
		if t.Failed() {
			t.Logf("seed=%d", seed)
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	xs := make([]int64, 3000)
	for i := range xs {
		xs[i] = rng.Int63()
	}
	runs, stats, err := SpillSorted(context.Background(), MLMSort, xs, 2, 700, ExternalOptions{Store: st})
	if err != nil {
		t.Fatalf("SpillSorted: %v", err)
	}
	if len(runs) != 5 || stats.Runs != 5 {
		t.Fatalf("runs = %v (stats %d), want 5", runs, stats.Runs)
	}
	if stats.SpilledBytes != int64(len(xs))*8 {
		t.Fatalf("SpilledBytes = %d, want %d", stats.SpilledBytes, len(xs)*8)
	}
	var total int64
	for _, id := range runs {
		r, err := st.OpenRun(id)
		if err != nil {
			t.Fatalf("OpenRun(%d): %v", id, err)
		}
		buf := make([]int64, 4096)
		var run []int64
		for {
			n, err := r.Fill(buf)
			run = append(run, buf[:n]...)
			if n == 0 {
				break
			}
			if err != nil {
				t.Fatalf("Fill(%d): %v", id, err)
			}
		}
		r.Close()
		if !sort.SliceIsSorted(run, func(i, j int) bool { return run[i] < run[j] }) {
			t.Fatalf("run %d is not sorted", id)
		}
		total += int64(len(run))
	}
	if total != int64(len(xs)) {
		t.Fatalf("runs hold %d elems, want %d", total, len(xs))
	}
}

// TestMergeSpilledStreamsAndRecycles checks the streaming contract: the
// sink sees a nondecreasing sequence in bounded batches, and the merge
// leaves no fill goroutines behind.
func TestMergeSpilledStreamsAndRecycles(t *testing.T) {
	st, err := spill.NewStore(spill.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	defer st.Close()
	xs := make([]int64, 4000)
	for i := range xs {
		xs[i] = int64((i * 7919) % 4001)
	}
	runs, _, err := SpillSorted(context.Background(), MLMSort, xs, 2, 900, ExternalOptions{Store: st})
	if err != nil {
		t.Fatalf("SpillSorted: %v", err)
	}
	before := runtime.NumGoroutine()
	var got []int64
	total, err := MergeSpilled(context.Background(), st, runs, ExternalOptions{MergeBlock: 128, ReadAhead: 3},
		func(batch []int64) error {
			got = append(got, batch...)
			return nil
		})
	if err != nil {
		t.Fatalf("MergeSpilled: %v", err)
	}
	if total != int64(len(xs)) || len(got) != len(xs) {
		t.Fatalf("merged %d/%d elems, want %d", total, len(got), len(xs))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("merged stream is not sorted")
	}
	waitGoroutines(t, before)
}

// TestMergeSpilledSinkErrorAborts checks that a failing sink stops the
// merge promptly, joins the fill workers, and surfaces the sink's error.
func TestMergeSpilledSinkErrorAborts(t *testing.T) {
	st, err := spill.NewStore(spill.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	defer st.Close()
	xs := make([]int64, 2000)
	for i := range xs {
		xs[i] = int64(i)
	}
	runs, _, err := SpillSorted(context.Background(), MLMSort, xs, 2, 500, ExternalOptions{Store: st})
	if err != nil {
		t.Fatalf("SpillSorted: %v", err)
	}
	before := runtime.NumGoroutine()
	boom := errors.New("client went away")
	calls := 0
	_, err = MergeSpilled(context.Background(), st, runs, ExternalOptions{MergeBlock: 64},
		func(batch []int64) error {
			calls++
			if calls >= 2 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("MergeSpilled = %v, want sink error", err)
	}
	waitGoroutines(t, before)
}

func TestRunRealExternalCancelCleansRuns(t *testing.T) {
	st, err := spill.NewStore(spill.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	defer st.Close()
	xs := make([]int64, 3000)
	for i := range xs {
		xs[i] = int64(len(xs) - i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sunk := 0
	_, err = RunRealExternal(ctx, MLMSort, xs, 2, 600, ExternalOptions{
		Store:      st,
		MergeBlock: 64,
		Sink: func(batch []int64) error {
			sunk += len(batch)
			cancel() // client disconnects mid-stream
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunRealExternal = %v, want context.Canceled", err)
	}
	if sunk == 0 {
		t.Fatal("cancellation fired before any batch was streamed")
	}
	if n := st.LiveRuns(); n != 0 {
		t.Fatalf("%d run files survive a cancelled sort", n)
	}
	if fp := st.FootprintBytes(); fp != 0 {
		t.Fatalf("%d disk bytes still charged after cancel", fp)
	}
}

// onceFlaky fails the first write of one run and the first read of
// another, which a retry policy must absorb.
type onceFlaky struct {
	failedW, failedR bool
}

func (f *onceFlaky) FailWrite(run int) bool {
	if run == 1 && !f.failedW {
		f.failedW = true
		return true
	}
	return false
}

func (f *onceFlaky) FailRead(run int) bool {
	if run == 2 && !f.failedR {
		f.failedR = true
		return true
	}
	return false
}

func TestRunRealExternalRetriesIOFaults(t *testing.T) {
	st, err := spill.NewStore(spill.Config{Dir: t.TempDir(), Faults: &onceFlaky{}})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	defer st.Close()
	res := telemetry.NewResilience(telemetry.NewRegistry())
	xs := make([]int64, 2500)
	for i := range xs {
		xs[i] = int64((i * 31) % 977)
	}
	want := append([]int64(nil), xs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	_, err = RunRealExternal(context.Background(), MLMSort, xs, 2, 500, ExternalOptions{
		RealOptions: RealOptions{
			Retry:      exec.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
			Resilience: res,
		},
		Store:      st,
		MergeBlock: 100,
	})
	if err != nil {
		t.Fatalf("RunRealExternal under IO faults: %v", err)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("elem %d = %d, want %d after fault retries", i, xs[i], want[i])
		}
	}
	fst := st.Stats()
	if fst.WriteFaults != 1 || fst.ReadFaults != 1 {
		t.Fatalf("fault counters = %d/%d, want 1/1", fst.WriteFaults, fst.ReadFaults)
	}
	if st.LiveRuns() != 0 {
		t.Fatalf("%d run files survive completion", st.LiveRuns())
	}
}

func TestRunRealExternalExhaustedRetriesAbort(t *testing.T) {
	st, err := spill.NewStore(spill.Config{Dir: t.TempDir(), Faults: alwaysFailReads{}})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	defer st.Close()
	xs := make([]int64, 1000)
	for i := range xs {
		xs[i] = int64(i ^ 0x55)
	}
	_, err = RunRealExternal(context.Background(), MLMSort, xs, 2, 300, ExternalOptions{
		RealOptions: RealOptions{Retry: exec.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}},
		Store:       st,
	})
	var ce *exec.ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("RunRealExternal = %v, want ChunkError after exhausted read retries", err)
	}
	if st.LiveRuns() != 0 {
		t.Fatalf("%d run files survive a fault abort", st.LiveRuns())
	}
}

type alwaysFailReads struct{}

func (alwaysFailReads) FailWrite(int) bool { return false }
func (alwaysFailReads) FailRead(int) bool  { return true }

// waitGoroutines waits for the goroutine count to sink back to (or below)
// the recorded baseline, tolerating runtime background noise.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline: %d > %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
