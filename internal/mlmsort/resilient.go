package mlmsort

import (
	"context"
	"sync"
	"time"

	"knlmlm/internal/exec"
	"knlmlm/internal/mem"
	"knlmlm/internal/memkind"
	"knlmlm/internal/model"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/units"
)

// AllocFaults injects scratchpad allocation failures into the real path;
// fault.Injector satisfies it. A nil AllocFaults never fails.
type AllocFaults interface {
	FailAlloc(chunk int) bool
}

// RealOptions configures RunRealResilient. The zero value reproduces
// RunReal exactly: no telemetry, no simulated heap, no faults, no retries.
type RealOptions struct {
	// Recorder, when non-nil, receives per-megachunk stage spans (work and
	// buffer-wait) from the staging pipeline plus the final-merge span.
	Recorder *telemetry.Recorder
	// Heap, when non-nil, is the simulated two-level heap that staging
	// buffers are placed on. Each staged megachunk performs an
	// HBW_POLICY_BIND allocation for its residency; when MCDRAM is
	// exhausted the megachunk degrades to the DDR-direct (MLM-ddr) data
	// flow instead of failing the sort.
	Heap *memkind.Heap
	// AllocFaults, when non-nil, injects additional allocation failures on
	// top of genuine heap exhaustion.
	AllocFaults AllocFaults
	// Resilience, when non-nil, receives retry, degradation, and run
	// outcome counters.
	Resilience *telemetry.Resilience
	// Wrap, when non-nil, rewrites the staging pipeline's stage set before
	// it runs — the hook the fault injector's Wrap plugs into.
	Wrap func(exec.Stages) exec.Stages
	// Retry bounds per-megachunk stage attempts (see exec.RetryPolicy).
	Retry exec.RetryPolicy
	// ChunkTimeout bounds each stage attempt per megachunk; zero means
	// unbounded.
	ChunkTimeout time.Duration
	// Buffers is the staging-buffer count for the megachunk pipeline.
	// Zero selects 1, which serializes the stages exactly like the
	// original driver loop; 3 is the paper's triple buffering.
	Buffers int
	// Autotune, when non-nil, measures per-thread copy and compute rates
	// over the first megachunks and re-provisions the staged pipeline's
	// copy and compute widths from the Section 3.2 model solved with the
	// measured rates. Only the staged variants (MLM-sort, MLM-hybrid)
	// have copy pools to tune; others ignore it.
	Autotune *AutotuneOptions
	// Widths, when non-nil, hands the staged pipeline's copy and compute
	// pool widths to an external controller (the scheduler's fair-share
	// split across concurrent jobs). The run starts from the control's
	// current pools and tracks later SetPools calls; when Autotune is
	// also set, the tuner's decision is written through the same control.
	Widths *WidthControl
	// Pool, when non-nil, replaces the process-wide shared pool as the
	// source of this run's staging buffers and sort scratch — the hook
	// the scheduler uses to draw job staging from its budget-capped pool.
	// The final-merge buffer still comes from the shared pool: merge
	// space is DDR-side in the paper's data flow, not MCDRAM.
	Pool *mem.SlicePool
	// Elem selects how the int64 cells are interpreted by the sort and
	// merge kernels (see ElemKind). The zero value is ElemInt64, the
	// original key stream. ElemKV requires an even cell count and one of
	// the MLM staged variants — the whole-array GNU sorts and
	// BasicChunked have no record kernels.
	Elem ElemKind
}

// AutotuneOptions configures mid-run re-provisioning. The zero value is
// usable: warmup is one megachunk and the thread budget is inferred from
// the run's current split.
type AutotuneOptions struct {
	// TotalThreads is the budget the re-solve distributes between copy
	// and compute pools; zero selects threads+2 (the initial split).
	TotalThreads int
	// MaxCopyIn bounds the copy-in widths swept; zero selects
	// TotalThreads/2.
	MaxCopyIn int
	// WarmupChunks is how many megachunks to measure before solving;
	// zero selects 1.
	WarmupChunks int
	// Registry, when non-nil, receives autotune_reprovisions_total and
	// the solved-width gauges.
	Registry *telemetry.Registry
	// OnDecision, when non-nil, receives the tuner's solved prediction
	// (measured effective rates included) right after it is applied —
	// the scheduler's hook for folding measured rates back into its
	// fair-share solves. Runs inline on a stage goroutine; keep it quick.
	OnDecision func(model.Prediction)
}

// buffers resolves the staging-buffer count.
func (o RealOptions) buffers() int {
	if o.Buffers > 0 {
		return o.Buffers
	}
	return 1
}

// pool resolves the slice pool the run draws from.
func (o RealOptions) pool() *mem.SlicePool {
	if o.Pool != nil {
		return o.Pool
	}
	return mem.Pool
}

// finish applies the resilience and observability knobs to a stage set.
func (o RealOptions) finish(s exec.Stages) exec.Stages {
	if o.Recorder != nil {
		s.Observer = o.Recorder
	}
	s.Retry = o.Retry
	s.ChunkTimeout = o.ChunkTimeout
	if o.Resilience != nil {
		s.OnRetry = o.Resilience.ObserveRetry
	}
	// All real pipelines draw staging buffers from a slice pool, so
	// repeated runs reuse backing arrays instead of re-allocating them;
	// o.Pool lets a scheduler substitute its budget-capped pool.
	s.Pool = o.pool()
	if o.Wrap != nil {
		s = o.Wrap(s)
	}
	return s
}

// RealStats summarizes one resilient run's megachunk placement.
type RealStats struct {
	// Megachunks is the megachunk count of the run.
	Megachunks int
	// Staged counts megachunks that went through the MCDRAM staging path.
	Staged int
	// Degraded counts megachunks that fell back to the DDR-direct path
	// because their staging allocation failed.
	Degraded int
	// AllocFailures counts failed staging allocations (injected or
	// genuine), including ones on retried attempts.
	AllocFailures int
	// Retunes counts autotune re-provisioning decisions applied (0 or 1).
	Retunes int
	// TunedPools is the thread split the autotuner settled on, when
	// Retunes > 0.
	TunedPools model.Pools
}

// RunRealResilient is RunRealObserved with full failure semantics: the
// run is cancellable through ctx, per-megachunk stage failures are
// retried under opts.Retry, injected or genuine MCDRAM exhaustion
// degrades megachunks to the DDR-direct data flow instead of failing the
// sort, and every retry/degradation/outcome is visible through
// opts.Resilience.
//
// Degraded megachunks still traverse the staging pipeline — their copy
// stages are no-ops and their compute sorts the megachunk in place — so
// their telemetry spans exist but describe skipped copies.
func RunRealResilient(ctx context.Context, a Algorithm, xs []int64, threads, megachunkLen int, opts RealOptions) (RealStats, error) {
	stats, err := runRealResilient(ctx, a, xs, threads, megachunkLen, opts)
	if opts.Resilience != nil {
		opts.Resilience.RecordOutcome(err)
	}
	return stats, err
}

// stagingTable tracks the live scratchpad allocation and the
// staged-vs-degraded decision behind each megachunk. The copy-in
// goroutine, compute-retry re-staging, and (with a chunk deadline)
// abandoned attempts can all touch a slot, and the underlying Scratchpad
// is not itself thread-safe, so every heap call happens under the
// table's lock. The table keeps at most one live allocation per
// megachunk and frees stragglers on drain.
type stagingTable struct {
	heap *memkind.Heap

	mu       sync.Mutex
	live     []*memkind.Allocation
	degraded []bool
	failures int
}

func newStagingTable(heap *memkind.Heap, n int) *stagingTable {
	return &stagingTable{
		heap:     heap,
		live:     make([]*memkind.Allocation, n),
		degraded: make([]bool, n),
	}
}

// stage decides megachunk i's placement for one copy-in attempt:
// true means the megachunk is MCDRAM-staged (allocation held until
// release), false means it degrades to the DDR-direct path.
func (t *stagingTable) stage(i int, size units.Bytes, o RealOptions) bool {
	failed := o.AllocFaults != nil && o.AllocFaults.FailAlloc(i)
	t.mu.Lock()
	var alloc *memkind.Allocation
	if !failed && t.heap != nil {
		a, err := t.heap.Alloc(memkind.PolicyHBWBind, size, 0)
		if err != nil {
			failed = true
		} else {
			alloc = a
		}
	}
	if old := t.live[i]; old != nil {
		// A previous attempt's allocation (e.g. before a compute retry
		// re-staged the chunk) is superseded.
		t.heap.Free(old)
	}
	t.live[i] = alloc
	t.degraded[i] = failed
	if failed {
		t.failures++
	}
	t.mu.Unlock()
	if failed && o.Resilience != nil {
		o.Resilience.RecordDegradation("mlmsort-megachunk")
	}
	return !failed
}

// isDegraded reports megachunk i's current placement decision.
func (t *stagingTable) isDegraded(i int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.degraded[i]
}

// release frees megachunk i's staging allocation after copy-out.
func (t *stagingTable) release(i int) {
	t.mu.Lock()
	if a := t.live[i]; a != nil {
		t.heap.Free(a)
		t.live[i] = nil
	}
	t.mu.Unlock()
}

// drain frees every remaining allocation (aborted or cancelled runs leave
// in-flight megachunks staged) and reports the degraded-megachunk count
// and the allocation-failure tally.
func (t *stagingTable) drain() (degraded, failures int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, a := range t.live {
		if a != nil {
			t.heap.Free(a)
			t.live[i] = nil
		}
	}
	for _, d := range t.degraded {
		if d {
			degraded++
		}
	}
	return degraded, t.failures
}
