// Package mlmsort implements the paper's Section 4: the MLM-sort algorithm
// and its variants (MLM-sort in flat mode, MLM-implicit in hardware cache
// mode, MLM-ddr without MCDRAM), the GNU-parallel-sort baselines (flat and
// hardware cache mode), and the basic chunked algorithm of Bender et al.
//
// Each variant exists twice:
//
//   - a simulated phase plan (built from internal/core kernels) evaluated
//     on the simulated KNL — this is what reproduces Table 1, Figure 6 and
//     Figure 7;
//   - a real executable version (over []int64, built on internal/psort and
//     internal/exec) — this is what proves the algorithms correct.
package mlmsort

import (
	"fmt"

	"knlmlm/internal/units"
)

// Calibration holds the per-thread rate constants of the sort cost model.
//
// The memory-system constants (bandwidths, capacities) come from the
// machine spec; these constants describe the *cores'* throughput on the
// sort kernels and are anchored to the paper's Table 1 as documented on
// each field. They are deliberately few: five rates and two structural
// constants cover all thirty Table 1 cells plus Figures 6 and 7.
type Calibration struct {
	// SCopy is a copy thread's DDR<->MCDRAM rate (Table 2: 4.8 GB/s).
	SCopy units.BytesPerSec

	// SSerial is one thread's touched-byte rate running the serial
	// divide-and-conquer sort over near memory (MCDRAM or cache-warm
	// data). Anchor: MLM-implicit's 7.37 s at 2 G random elements is
	// almost entirely serial sort time.
	SSerial units.BytesPerSec

	// DDRLatencyPenalty scales a thread's rate when its working data
	// streams from DDR rather than MCDRAM. KNL's MCDRAM sustains more
	// outstanding requests per thread; under the high occupancy of a
	// 256-thread sort, DDR per-thread throughput degrades even before the
	// hard bandwidth cap binds. Anchor: MLM-ddr vs MLM-sort (9.28 s vs
	// 8.09 s at 2 G random) isolates this penalty, since the two variants
	// differ only in where the serial sorts read from.
	DDRLatencyPenalty float64

	// SMergeBase is one thread's touched-byte rate per comparison level:
	// a k-way merge runs at SMergeBase / max(1, log2(k)) per thread. This
	// makes merge comparison work consistent with the serial sort's
	// per-level pricing — a K-chunk sort's total comparisons are
	// N*(log2(M) + log2(K)) = N*log2(N) however it is chunked, as they
	// must be. Anchor: the multiway-merge share of GNU parallel sort's
	// runtime and MLM-sort's megachunk merges.
	SMergeBase units.BytesPerSec
	// MergeFanPenalty is the *memory-side* inefficiency of merging many
	// streams: a k-way merge's reads hop between k run heads, defeating
	// the prefetchers and DRAM row buffers, so its source-level traffic
	// is charged (1 + MergeFanPenalty*log2(k)) per payload byte. This is
	// what makes small chunk sizes lose in Figure 7: they shift
	// comparison work into a high-fan-in final merge whose DRAM
	// efficiency is poor.
	MergeFanPenalty float64

	// GNUWorkInflation multiplies the GNU baseline's local-sort work,
	// accounting for the parallel library's scheduling overhead and SMT
	// oversubscription relative to MLM-sort's one-thread-one-chunk
	// discipline (the paper: MLM-sort "does not rely on
	// thread-scalability of multithreaded algorithms"). Anchor: the
	// GNU-flat vs MLM-ddr gap (11.92 s vs 9.28 s), which no memory effect
	// explains — neither variant touches MCDRAM.
	GNUWorkInflation float64

	// LeafElems is the subarray size at which the serial sort's recursion
	// bottoms out into insertion sort (24, as in internal/psort).
	LeafElems int64

	// L2PerThread is the per-thread share of core-local cache: KNL has
	// 1 MiB L2 per 2-core tile; at 4-way SMT that is 128 KiB per thread.
	// Recursion levels whose subproblems fit are invisible to the memory
	// system.
	L2PerThread units.Bytes

	// TimeScale converts simulator time to the paper's reported seconds.
	// The fluid model's absolute rates are calibrated for *ratios*; one
	// global scale anchors GNU-flat at 2 G random elements to the paper's
	// 11.92 s. (See EXPERIMENTS.md for the absolute-vs-shape discussion.)
	TimeScale float64
}

// DefaultCalibration returns the constants used throughout the
// reproduction, as fitted by cmd/calibrate against the paper's Table 1
// (coordinate descent on the within-configuration speedup ratios; final
// rms log-ratio error ~7% across the 28 usable cells). Derivations of each
// constant's *role* are on the Calibration fields; rerun cmd/calibrate to
// regenerate the values.
func DefaultCalibration() Calibration {
	return Calibration{
		SCopy:             units.GBps(4.8),
		SSerial:           units.GBps(0.8078),
		DDRLatencyPenalty: 0.9426,
		SMergeBase:        units.GBps(0.6617),
		MergeFanPenalty:   0.0223,
		GNUWorkInflation:  1.4454,
		LeafElems:         24,
		L2PerThread:       128 * units.KiB,
		TimeScale:         1.6501, // 0.8399 (in-fit) x 1.9647 (anchor correction)
	}
}

// Validate reports whether the calibration is usable.
func (c Calibration) Validate() error {
	switch {
	case c.SCopy <= 0 || c.SSerial <= 0 || c.SMergeBase <= 0:
		return fmt.Errorf("mlmsort: rates must be positive: %+v", c)
	case c.DDRLatencyPenalty <= 0 || c.DDRLatencyPenalty > 1:
		return fmt.Errorf("mlmsort: DDR latency penalty %v outside (0,1]", c.DDRLatencyPenalty)
	case c.MergeFanPenalty < 0:
		return fmt.Errorf("mlmsort: negative merge fan penalty %v", c.MergeFanPenalty)
	case c.GNUWorkInflation < 1:
		return fmt.Errorf("mlmsort: GNU work inflation %v below 1", c.GNUWorkInflation)
	case c.LeafElems < 2:
		return fmt.Errorf("mlmsort: leaf size %d too small", c.LeafElems)
	case c.L2PerThread <= 0:
		return fmt.Errorf("mlmsort: non-positive L2 share %v", c.L2PerThread)
	case c.TimeScale <= 0:
		return fmt.Errorf("mlmsort: non-positive time scale %v", c.TimeScale)
	}
	return nil
}

// SMerge reports the per-thread touched-byte rate of a k-way merge.
func (c Calibration) SMerge(k int) units.BytesPerSec {
	if k < 2 {
		k = 2
	}
	levels := log2f(float64(k))
	if levels < 1 {
		levels = 1
	}
	return units.BytesPerSec(float64(c.SMergeBase) / levels)
}

// MergeSourceScale reports the source-level traffic multiplier of a k-way
// merge (multi-stream prefetch/row-buffer inefficiency).
func (c Calibration) MergeSourceScale(k int) float64 {
	if k < 2 {
		k = 2
	}
	return 1 + c.MergeFanPenalty*log2f(float64(k))
}
