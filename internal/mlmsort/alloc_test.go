package mlmsort

import (
	"testing"

	"knlmlm/internal/mem"
	"knlmlm/internal/race"
	"knlmlm/internal/workload"
)

// TestComputeLoopAllocationFree: the per-megachunk compute body — the
// steady-state inner loop of every real run — must not allocate once the
// pool is warm (single-worker fast path: adaptive sort straight into
// pooled scratch).
func TestComputeLoopAllocationFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	const mcLen = 20_000
	src := workload.Generate(workload.Random, mcLen, 21)
	mc := make([]int64, mcLen)
	scratch := mem.Pool.Get(mcLen)
	defer mem.Pool.Put(scratch)
	sorter := newMegachunkSorter(1, ElemInt64)
	allocs := testing.AllocsPerRun(10, func() {
		copy(mc, src)
		sorter.sort(mc, scratch)
	})
	if allocs != 0 {
		t.Errorf("steady-state compute loop allocates %.1f times per megachunk", allocs)
	}
	if !workload.IsSorted(mc) {
		t.Fatal("sorter broke the data")
	}
}

// TestRealRunAllocationScaling: with the shared pool warm, adding
// megachunks to a run must not add per-megachunk heap allocations — the
// whole point of pooling the pipeline buffers, sort scratch, and the
// final-merge target. Fixed per-run costs (channels, goroutines, the
// bounds table) are allowed; the marginal cost per extra megachunk must
// stay near zero.
func TestRealRunAllocationScaling(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	const n = 64_000
	src := workload.Generate(workload.Random, n, 23)
	buf := make([]int64, n)
	measure := func(mcLen int) float64 {
		return testing.AllocsPerRun(5, func() {
			copy(buf, src)
			if err := RunReal(MLMSort, buf, 1, mcLen); err != nil {
				t.Fatal(err)
			}
		})
	}
	few := measure(16_000) // 4 megachunks
	many := measure(2_000) // 32 megachunks
	if !workload.IsSorted(buf) {
		t.Fatal("output not sorted")
	}
	marginal := (many - few) / 28
	if marginal > 1.5 {
		t.Errorf("allocations scale with megachunks: 4mc=%.0f 32mc=%.0f (%.2f per megachunk)",
			few, many, marginal)
	}
}
