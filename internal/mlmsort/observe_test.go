package mlmsort

import (
	"testing"

	"knlmlm/internal/exec"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/workload"
)

// TestRunRealObservedStagedSpans checks that an observed MLM-sort run
// records copy-in, compute and copy-out for every megachunk plus the
// final merge, with byte attribution matching the data actually staged.
func TestRunRealObservedStagedSpans(t *testing.T) {
	const n = 40_000
	const mc = 10_000 // 4 megachunks
	xs := workload.Generate(workload.Random, n, 5)
	rec := telemetry.NewRecorder()
	if err := RunRealObserved(MLMSort, xs, 4, mc, rec); err != nil {
		t.Fatal(err)
	}
	if !workload.IsSorted(xs) {
		t.Fatal("output not sorted")
	}
	perStage := map[exec.Stage]int{}
	var mergeSeen bool
	for _, s := range rec.Spans() {
		perStage[s.Stage]++
		if s.Chunk == -1 && s.Stage == exec.StageCompute {
			mergeSeen = true
		}
	}
	const megachunks = n / mc
	if perStage[exec.StageCopyIn] != megachunks || perStage[exec.StageCopyOut] != megachunks {
		t.Errorf("copy spans = %d in / %d out, want %d each",
			perStage[exec.StageCopyIn], perStage[exec.StageCopyOut], megachunks)
	}
	if perStage[exec.StageCompute] != megachunks+1 { // + final merge
		t.Errorf("compute spans = %d, want %d", perStage[exec.StageCompute], megachunks+1)
	}
	if !mergeSeen {
		t.Error("no whole-array span for the final merge")
	}
	bytes := rec.BytesByStage()
	if want := int64(n) * 8; bytes[exec.StageCopyIn] != want || bytes[exec.StageCopyOut] != want {
		t.Errorf("staged bytes in/out = %d/%d, want %d each",
			bytes[exec.StageCopyIn], bytes[exec.StageCopyOut], want)
	}
}

// TestRunRealObservedUnstagedVariants: in-place variants must record
// compute spans only (no copies happen, none may be claimed).
func TestRunRealObservedUnstagedVariants(t *testing.T) {
	for _, a := range []Algorithm{GNUFlat, MLMDDr, MLMImplicit, BasicChunked} {
		xs := workload.Generate(workload.Random, 20_000, 9)
		rec := telemetry.NewRecorder()
		if err := RunRealObserved(a, xs, 4, 0, rec); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !workload.IsSorted(xs) {
			t.Fatalf("%v: not sorted", a)
		}
		b := rec.BytesByStage()
		if b[exec.StageCopyIn] != 0 || b[exec.StageCopyOut] != 0 {
			t.Errorf("%v: in-place variant recorded copy bytes %d/%d",
				a, b[exec.StageCopyIn], b[exec.StageCopyOut])
		}
		if rec.Len() == 0 {
			t.Errorf("%v: no spans recorded", a)
		}
	}
}

// TestRunRealObservedNilRecorder: the nil-recorder path must behave
// exactly like RunReal.
func TestRunRealObservedNilRecorder(t *testing.T) {
	xs := workload.Generate(workload.Reverse, 10_000, 2)
	if err := RunRealObserved(MLMSort, xs, 4, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !workload.IsSorted(xs) {
		t.Error("not sorted")
	}
}

// TestObservedRunAnalyzable: the recorded spans must drive the analyzer
// end to end — non-zero wall time, all megachunks seen.
func TestObservedRunAnalyzable(t *testing.T) {
	xs := workload.Generate(workload.Random, 40_000, 7)
	rec := telemetry.NewRecorder()
	if err := RunRealObserved(MLMSort, xs, 4, 10_000, rec); err != nil {
		t.Fatal(err)
	}
	a := telemetry.Analyze(rec.Spans())
	if a.Chunks != 4 {
		t.Errorf("analyzer saw %d chunks, want 4", a.Chunks)
	}
	if a.Wall <= 0 || a.TComp <= 0 {
		t.Errorf("degenerate analysis: wall=%v tcomp=%v", a.Wall, a.TComp)
	}
	// The driver loop is serial: copy and compute cannot overlap, so
	// overlap efficiency must be ~0 and pipeline efficiency < 1. (This is
	// exactly the kind of fact the telemetry exists to surface.)
	if a.OverlapEfficiency > 0.01 {
		t.Errorf("serial staging reported overlap efficiency %v", a.OverlapEfficiency)
	}
}
