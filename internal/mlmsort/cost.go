package mlmsort

import (
	"fmt"
	"math"

	"knlmlm/internal/core"
	"knlmlm/internal/knl"
	"knlmlm/internal/units"
	"knlmlm/internal/workload"
)

func log2f(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// serialLevels reports the recursion depth of the serial divide-and-conquer
// sort over m elements: each level streams the level's whole data once
// (read+write), down to LeafElems-sized insertion-sort leaves (whose work
// is folded into the last level).
func (c Calibration) serialLevels(m int64) float64 {
	if m <= 0 {
		return 1
	}
	return math.Max(1, log2f(float64(m)/float64(c.LeafElems)))
}

// dramLevels reports how many of those levels have per-thread subproblems
// too large for the thread's core-cache share, and therefore reach the
// memory system.
func (c Calibration) dramLevels(m int64) float64 {
	bytes := float64(m) * float64(units.ElementSize)
	return math.Max(0, math.Min(c.serialLevels(m), log2f(bytes/float64(c.L2PerThread))))
}

// serialSortKernels builds the kernels of a phase in which `threads`
// threads each serially sort m elements (phase footprint = threads*m
// elements), with the data in the given placement.
//
//   - Flat placements (scratchpad or DDR) produce one kernel: the
//     DRAM-visible levels carry demand, the in-core remainder is pure
//     compute time, and DDR placement pays the latency penalty.
//   - CacheManaged produces one kernel per DRAM-visible recursion level,
//     because each level halves its working set: early levels thrash the
//     MCDRAM cache, deep levels run cache-resident — exactly the paper's
//     explanation for MLM-implicit's success.
//
// workFactor scales the pass count for input structure (workload profile)
// and library overhead (GNU inflation). staged marks data that an explicit
// copy-in just placed (so even level 0 is warm in cache terms — unused for
// flat placements).
func (c Calibration) serialSortKernels(
	m *knl.Machine, label string, threads int, elemsPerThread int64,
	placement core.Placement, workFactor float64, staged bool,
) []core.Kernel {
	if threads <= 0 || elemsPerThread <= 0 {
		panic(fmt.Sprintf("mlmsort: %s: bad serial sort shape %d x %d", label, threads, elemsPerThread))
	}
	phaseBytes := units.Bytes(threads) * units.BytesForElements(elemsPerThread)
	total := c.serialLevels(elemsPerThread) * workFactor
	dram := c.dramLevels(elemsPerThread) * workFactor

	if placement != core.CacheManaged {
		rate := c.SSerial
		if placement == core.DDRPlaced {
			// Only the DRAM-visible fraction of the work suffers DDR
			// latency; in-core touches run at full speed. Harmonic
			// blending: time/byte = inCore/S + (1-inCore)/(S*penalty).
			inCore := 1 - dram/total
			rate = units.BytesPerSec(float64(rate) / (inCore + (1-inCore)/c.DDRLatencyPenalty))
		}
		return []core.Kernel{{
			Label:          label,
			Threads:        threads,
			PerThread:      rate,
			Passes:         total,
			WorkingSet:     phaseBytes,
			WriteFraction:  0.5,
			Placement:      placement,
			InCoreFraction: 1 - dram/total,
		}}
	}

	// Cache-managed: one kernel per DRAM-visible level with halving
	// working sets, then the in-core remainder.
	var kernels []core.Kernel
	nLevels := int(math.Ceil(dram / workFactor)) // structural level count
	levelPasses := dram / math.Max(1, float64(nLevels))
	ws := phaseBytes
	for d := 0; d < nLevels; d++ {
		k := core.Kernel{
			Label:         fmt.Sprintf("%s/level%d", label, d),
			Threads:       threads,
			PerThread:     c.SSerial,
			Passes:        levelPasses,
			WorkingSet:    ws,
			WriteFraction: 0.5,
			Placement:     core.CacheManaged,
		}
		if d == 0 {
			if staged {
				k.ColdSweeps = core.NoColdSweeps
			} // else default: the first sweep is cold
		} else {
			// Data was streamed by the parent level, whose working set was
			// twice this level's.
			k.ColdSweeps = core.NoColdSweeps
			k.ReuseDistance = 2 * ws
		}
		// Cold/thrashing levels run at DDR-latency rates.
		if reusePoor(m, k) {
			k.PerThread = units.BytesPerSec(float64(c.SSerial) * c.DDRLatencyPenalty)
		}
		kernels = append(kernels, k)
		ws /= 2
	}
	if inCore := total - dram; inCore > 0 {
		kernels = append(kernels, core.Kernel{
			Label:          label + "/in-core",
			Threads:        threads,
			PerThread:      c.SSerial,
			Passes:         inCore,
			WorkingSet:     phaseBytes,
			WriteFraction:  0.5,
			Placement:      core.CacheManaged,
			ColdSweeps:     core.NoColdSweeps,
			ReuseDistance:  units.Bytes(float64(c.L2PerThread)) * units.Bytes(threads),
			InCoreFraction: 1,
		})
	}
	return kernels
}

// reusePoor reports whether a cache-managed kernel's warm sweeps still miss
// mostly (reuse below one half), meaning its threads stream from DDR.
func reusePoor(m *knl.Machine, k core.Kernel) bool {
	cap := m.CacheCapacity()
	if cap <= 0 {
		return true
	}
	dist := k.ReuseDistance
	if dist == 0 {
		dist = k.WorkingSet
	}
	if k.ColdSweeps != core.NoColdSweeps {
		return true // cold sweep dominates a single-pass level
	}
	// Mirror cachemodel.ReuseFraction's regimes without importing it here.
	switch {
	case dist <= cap:
		return false
	case dist >= 2*cap:
		return true
	default:
		return float64(2*cap-dist)/float64(dist) < 0.5
	}
}

// mergeKernel builds a parallel k-way merge kernel moving P payload bytes
// from src placement to dst placement (touched bytes 2P: read everything,
// write everything).
func (c Calibration) mergeKernel(
	m *knl.Machine, label string, threads, fanIn int, payload units.Bytes,
	src, dst core.Placement, staged bool,
) core.Kernel {
	rate := c.SMerge(fanIn)
	if src == core.DDRPlaced {
		rate = units.BytesPerSec(float64(rate) * c.DDRLatencyPenalty)
	}
	k := core.Kernel{
		Label:         label,
		Threads:       threads,
		PerThread:     rate,
		Passes:        1,
		WorkingSet:    payload,
		WriteFraction: 0.5,
		Placement:     src,
		DestPlacement: &dst,
		SourceScale:   c.MergeSourceScale(fanIn),
	}
	if staged {
		k.ColdSweeps = core.NoColdSweeps
	}
	return k
}

// orderFactors resolves the workload profile into (serial, comparison)
// pass-count factors.
func orderFactors(order workload.Order) (serial, comparison float64) {
	p := workload.ProfileFor(order)
	return p.SerialSortWorkFactor, p.ComparisonSortWorkFactor
}
