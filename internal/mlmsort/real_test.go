package mlmsort

import (
	"testing"
	"testing/quick"

	"knlmlm/internal/workload"
)

func allVariants() []Algorithm {
	return []Algorithm{GNUFlat, GNUCache, MLMDDr, MLMSort, MLMImplicit, BasicChunked}
}

func TestRunRealSortsAllVariantsAllOrders(t *testing.T) {
	for _, a := range allVariants() {
		for _, o := range workload.Orders() {
			xs := workload.Generate(o, 50_000, 7)
			orig := append([]int64(nil), xs...)
			if err := RunReal(a, xs, 8, 0); err != nil {
				t.Fatalf("%v/%v: %v", a, o, err)
			}
			if !workload.IsSorted(xs) {
				t.Errorf("%v/%v: not sorted", a, o)
			}
			if workload.Fingerprint(xs) != workload.Fingerprint(orig) {
				t.Errorf("%v/%v: not a permutation", a, o)
			}
		}
	}
}

func TestRunRealEdgeSizes(t *testing.T) {
	for _, a := range allVariants() {
		for _, n := range []int{0, 1, 2, 3, 7, 8, 9} {
			xs := workload.Generate(workload.Random, n, 3)
			orig := append([]int64(nil), xs...)
			if err := RunReal(a, xs, 4, 0); err != nil {
				t.Fatalf("%v n=%d: %v", a, n, err)
			}
			if !workload.IsSorted(xs) || workload.Fingerprint(xs) != workload.Fingerprint(orig) {
				t.Errorf("%v n=%d: bad output %v", a, n, xs)
			}
		}
	}
}

func TestRunRealMegachunkSizes(t *testing.T) {
	// Megachunk sizes that divide unevenly, equal N, exceed N.
	for _, mc := range []int{1, 100, 999, 10_000, 10_001, 50_000} {
		xs := workload.Generate(workload.Random, 10_000, 11)
		orig := append([]int64(nil), xs...)
		if err := RunReal(MLMSort, xs, 4, mc); err != nil {
			t.Fatalf("mc=%d: %v", mc, err)
		}
		if !workload.IsSorted(xs) || workload.Fingerprint(xs) != workload.Fingerprint(orig) {
			t.Errorf("mc=%d: bad output", mc)
		}
	}
}

func TestRunRealRejectsBadThreads(t *testing.T) {
	if err := RunReal(GNUFlat, []int64{2, 1}, 0, 0); err == nil {
		t.Error("threads=0 should error")
	}
	if err := RunReal(Algorithm(42), []int64{2, 1}, 1, 0); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestRunRealQuickCheck(t *testing.T) {
	for _, a := range []Algorithm{MLMSort, MLMImplicit, BasicChunked} {
		a := a
		f := func(xs []int64, mcRaw uint8) bool {
			orig := append([]int64(nil), xs...)
			mc := int(mcRaw) // 0 selects the default path
			if err := RunReal(a, xs, 3, mc); err != nil {
				return false
			}
			return workload.IsSorted(xs) && workload.Fingerprint(xs) == workload.Fingerprint(orig)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", a, err)
		}
	}
}

// All variants must agree element-for-element (total order on int64 keys
// makes the sorted output unique).
func TestRunRealVariantsAgree(t *testing.T) {
	ref := workload.Generate(workload.Random, 30_000, 5)
	want := append([]int64(nil), ref...)
	if err := RunReal(GNUFlat, want, 4, 0); err != nil {
		t.Fatal(err)
	}
	for _, a := range allVariants()[1:] {
		xs := append([]int64(nil), ref...)
		if err := RunReal(a, xs, 4, 0); err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("%v differs from GNU at %d: %d vs %d", a, i, xs[i], want[i])
			}
		}
	}
}
