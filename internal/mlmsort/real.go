package mlmsort

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"knlmlm/internal/exec"
	"knlmlm/internal/mem"
	"knlmlm/internal/model"
	"knlmlm/internal/psort"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/tune"
	"knlmlm/internal/units"
)

// RunReal executes the algorithm's actual data flow over xs, sorting it in
// place. threads is the worker count (use a small number on small hosts —
// the algorithms' structure, not their host speed, is what this layer
// verifies). megachunkLen is the MLM megachunk size in elements; zero
// selects the whole array (MLM-implicit's configuration) for the MLM
// variants and a quarter of the array for the staged variants, so that the
// multi-megachunk code path executes.
//
// The five variants differ in *data flow*, which is exactly what they do on
// real KNL hardware; memory-mode differences (where buffers live) have no
// observable effect on a host without MCDRAM and are simulated by the
// timing layer instead.
func RunReal(a Algorithm, xs []int64, threads, megachunkLen int) error {
	return RunRealObserved(a, xs, threads, megachunkLen, nil)
}

// RunRealObserved is RunReal with telemetry: when rec is non-nil, every
// megachunk's copy-in / compute / copy-out (and the final cross-megachunk
// merge) is recorded as a span, so the run can be exported as a Chrome
// trace and analyzed for copy↔compute overlap. A nil rec records nothing
// and adds no timestamps.
func RunRealObserved(a Algorithm, xs []int64, threads, megachunkLen int, rec *telemetry.Recorder) error {
	_, err := RunRealResilient(context.Background(), a, xs, threads, megachunkLen, RealOptions{Recorder: rec})
	return err
}

// runRealResilient dispatches a resilient real run by algorithm.
func runRealResilient(ctx context.Context, a Algorithm, xs []int64, threads, megachunkLen int, opts RealOptions) (RealStats, error) {
	if threads < 1 {
		return RealStats{}, fmt.Errorf("mlmsort: threads %d must be positive", threads)
	}
	n := len(xs)
	if err := opts.Elem.validateBuffer(n); err != nil {
		return RealStats{}, err
	}
	if n < 2*opts.Elem.cells() {
		return RealStats{}, ctx.Err()
	}
	if opts.Elem == ElemKV {
		switch a {
		case MLMDDr, MLMSort, MLMImplicit, MLMHybrid:
		default:
			return RealStats{}, fmt.Errorf("mlmsort: %v has no record data flow (ElemKV needs an MLM variant)", a)
		}
	}
	switch a {
	case GNUFlat, GNUCache, GNUPreferred:
		// GNU parallel sort: p local sorts + one parallel multiway merge.
		// The three variants differ only in memory placement, which has no
		// observable effect on the data flow. Telemetry sees it as one
		// whole-array compute span.
		if err := ctx.Err(); err != nil {
			return RealStats{}, err
		}
		done := spanStart(opts.Recorder)
		psort.Parallel(xs, threads)
		done(exec.StageCompute, wholeArray, touchedBytes(n))
		return RealStats{}, ctx.Err()
	case MLMDDr, MLMSort, MLMImplicit, MLMHybrid:
		return runRealMLM(ctx, a, xs, threads, megachunkLen, opts)
	case BasicChunked:
		return runRealBasic(ctx, xs, threads, megachunkLen, opts)
	default:
		return RealStats{}, fmt.Errorf("mlmsort: unknown algorithm %v", a)
	}
}

// wholeArray is the chunk index recorded for work that spans the full
// array (the final multiway merge, the GNU sorts).
const wholeArray = -1

// touchedBytes charges a compute span the read+write sweep convention.
func touchedBytes(elems int) int64 { return int64(elems) * 16 }

// spanStart begins a telemetry span and returns its closer. With a nil
// recorder it returns a no-op and takes no timestamp, so unobserved runs
// pay nothing.
func spanStart(rec *telemetry.Recorder) func(stage exec.Stage, chunk int, bytes int64) {
	if rec == nil {
		return func(exec.Stage, int, int64) {}
	}
	t0 := time.Now()
	return func(stage exec.Stage, chunk int, bytes int64) {
		rec.Record(stage, chunk, 0, t0, time.Now(), bytes)
	}
}

// megachunkBounds splits n elements into megachunks of the given length.
func megachunkBounds(n, mcLen int) [][2]int {
	if mcLen <= 0 || mcLen > n {
		mcLen = n
	}
	var out [][2]int
	for lo := 0; lo < n; lo += mcLen {
		hi := lo + mcLen
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// megachunkSorter sorts megachunks the MLM way — each worker sorts one
// maximal block, then a multiway merge through scratch — with a tunable
// worker width (the autotuner's compute-pool knob) and a reusable run
// table, so the steady state of a multi-megachunk run performs no
// per-megachunk allocation. Blocks are sorted with the adaptive kernel
// (or its record twin under ElemKV): each worker's disjoint segment of
// scratch doubles as its radix scratch.
type megachunkSorter struct {
	width   *atomic.Int32
	elem    ElemKind
	runs    [][]int64
	recRuns [][]psort.KV
}

func newMegachunkSorter(threads int, elem ElemKind) *megachunkSorter {
	ms := &megachunkSorter{width: new(atomic.Int32), elem: elem}
	ms.width.Store(int32(threads))
	return ms
}

// sort sorts one megachunk in place; scratch must be at least as long.
// Only the pipeline's single compute goroutine calls it, so the run table
// needs no lock (the same discipline the shared scratch relies on).
func (ms *megachunkSorter) sort(mc, scratch []int64) {
	if ms.elem == ElemKV {
		ms.sortRecords(mc, scratch)
		return
	}
	m := len(mc)
	if m < 2 {
		return
	}
	w := int(ms.width.Load())
	if w > m {
		w = m
	}
	if w <= 1 {
		// Single-worker fast path: no goroutines, no merge, no run table.
		psort.SortAdaptive(mc, scratch[:m])
		return
	}
	ms.runs = ms.runs[:0]
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo, hi := m*i/w, m*(i+1)/w
		block := mc[lo:hi]
		ms.runs = append(ms.runs, block)
		wg.Add(1)
		go func(block, blockScratch []int64) {
			defer wg.Done()
			psort.SortAdaptive(block, blockScratch)
		}(block, scratch[lo:hi])
	}
	wg.Wait()
	psort.ParallelMergeK(scratch[:m], ms.runs, w)
	copy(mc, scratch[:m])
}

// sortRecords is sort's ElemKV twin: the same block-then-merge shape
// with worker splits in record units, so no record ever straddles a
// block. The k-way merge is the serial record loser tree — multisequence
// selection has no record variant — which record jobs absorb because the
// staged pipeline overlaps it with the next megachunk's copy-in.
func (ms *megachunkSorter) sortRecords(mc, scratch []int64) {
	recs := psort.KVsFromInt64s(mc)
	r := len(recs)
	if r < 2 {
		return
	}
	recScratch := psort.KVsFromInt64s(scratch[:len(mc)])
	w := int(ms.width.Load())
	if w > r {
		w = r
	}
	if w <= 1 {
		psort.SortRecordsScratch(recs, recScratch)
		return
	}
	ms.recRuns = ms.recRuns[:0]
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo, hi := r*i/w, r*(i+1)/w
		block := recs[lo:hi]
		ms.recRuns = append(ms.recRuns, block)
		wg.Add(1)
		go func(block, blockScratch []psort.KV) {
			defer wg.Done()
			psort.SortRecordsScratch(block, blockScratch)
		}(block, recScratch[lo:hi])
	}
	wg.Wait()
	psort.MergeRecordsK(recScratch[:r], ms.recRuns...)
	copy(recs, recScratch[:r])
}

// finalMerge is phase 2 of the chunked algorithms: the multiway merge
// across sorted megachunks, recorded as one whole-array compute span.
// Under ElemKV the bounds are record-aligned by construction and the
// merge is the serial record loser tree.
func finalMerge(ctx context.Context, xs []int64, bounds [][2]int, threads int, rec *telemetry.Recorder, elem ElemKind) error {
	if len(bounds) < 2 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// The merge target comes from the shared pool rather than a per-run
	// make: the merge joins its workers before returning, so the buffer
	// is idle again by the Put.
	final := mem.Pool.Get(len(xs))
	done := spanStart(rec)
	if elem == ElemKV {
		recRuns := make([][]psort.KV, len(bounds))
		for i, b := range bounds {
			recRuns[i] = psort.KVsFromInt64s(xs[b[0]:b[1]])
		}
		psort.MergeRecordsK(psort.KVsFromInt64s(final[:len(xs)]), recRuns...)
	} else {
		runs := make([][]int64, len(bounds))
		for i, b := range bounds {
			runs[i] = xs[b[0]:b[1]]
		}
		psort.ParallelMergeK(final, runs, threads)
	}
	copy(xs, final)
	done(exec.StageCompute, wholeArray, touchedBytes(len(xs)))
	mem.Pool.Put(final)
	return ctx.Err()
}

func runRealMLM(ctx context.Context, a Algorithm, xs []int64, threads, megachunkLen int, opts RealOptions) (RealStats, error) {
	n := len(xs)
	if megachunkLen <= 0 {
		if a == MLMImplicit {
			megachunkLen = n // the paper: megachunk size equal to problem size
		} else {
			megachunkLen = (n + 3) / 4 // exercise the multi-megachunk path
		}
	}
	megachunkLen = opts.Elem.alignChunk(megachunkLen)
	bounds := megachunkBounds(n, megachunkLen)
	maxLen := 0
	for _, b := range bounds {
		if l := b[1] - b[0]; l > maxLen {
			maxLen = l
		}
	}
	// Scratch comes from the run's pool; it is returned only on clean
	// completion — an aborted run with a chunk deadline may have abandoned
	// a compute attempt that still writes scratch, and a buffer a rogue
	// goroutine can touch must never be recycled. A budget-capped pool
	// refusing the request degrades to an unpooled (DDR) allocation.
	scratchPool := opts.pool()
	scratch := scratchPool.Get(maxLen)
	if scratch == nil && maxLen > 0 {
		scratch = make([]int64, maxLen)
		scratchPool = nil
	}
	stats := RealStats{Megachunks: len(bounds)}
	sorter := newMegachunkSorter(threads, opts.Elem)
	copyW := new(atomic.Int32)
	copyW.Store(1) // the paper's baseline: one copy thread each way
	if opts.Widths != nil {
		// External width control: the run starts from the control's
		// current pools (defaulting any unset width) and both the copy
		// stages and the megachunk sorter read it live thereafter.
		copyW = &opts.Widths.copyIn
		sorter.width = &opts.Widths.comp
		if copyW.Load() <= 0 {
			copyW.Store(1)
		}
		if sorter.width.Load() <= 0 {
			sorter.width.Store(int32(threads))
		}
	}

	// Phase 1: sort each megachunk, on the exec pipeline so megachunks
	// inherit its full failure semantics (retries, panic recovery,
	// deadlines, cancellation). MLM-sort (and its hybrid twin) stages each
	// megachunk through a buffer (the flat-mode MCDRAM analog); when the
	// staging allocation fails — simulated heap exhaustion or an injected
	// fault — that megachunk degrades to the in-place DDR-direct flow. The
	// other variants sort in place throughout.
	s := exec.Stages{
		NumChunks: len(bounds),
		ChunkLen:  func(i int) int { return bounds[i][1] - bounds[i][0] },
	}
	staged := a == MLMSort || a == MLMHybrid
	var table *stagingTable
	if staged {
		table = newStagingTable(opts.Heap, len(bounds))
		s.CopyIn = func(i int, dst []int64) error {
			lo, hi := bounds[i][0], bounds[i][1]
			if !table.stage(i, units.BytesForElements(int64(hi-lo)), opts) {
				return nil // degraded: the megachunk stays in DDR
			}
			// copy-in: DDR -> "MCDRAM", at the tunable copy-pool width
			exec.CopyParallel(dst, xs[lo:hi], int(copyW.Load()))
			return nil
		}
		s.Compute = func(i int, buf []int64) error {
			if table.isDegraded(i) {
				lo, hi := bounds[i][0], bounds[i][1]
				sorter.sort(xs[lo:hi], scratch)
				return nil
			}
			sorter.sort(buf, scratch)
			return nil
		}
		s.CopyOut = func(i int, src []int64) error {
			if table.isDegraded(i) {
				return nil
			}
			lo, hi := bounds[i][0], bounds[i][1]
			// megachunk merge writes back to DDR
			exec.CopyParallel(xs[lo:hi], src, int(copyW.Load()))
			table.release(i)
			return nil
		}
	} else {
		s.Compute = func(i int, _ []int64) error {
			lo, hi := bounds[i][0], bounds[i][1]
			sorter.sort(xs[lo:hi], scratch)
			return nil
		}
	}
	fs := opts.finish(s)
	var tuner *tune.PipelineTuner
	if at := opts.Autotune; at != nil && staged {
		total := at.TotalThreads
		if total <= 0 {
			total = threads + 2 // the run's current split: 1+1 copy, threads compute
		}
		tuner = tune.NewPipelineTuner(tune.Config{
			Initial:      model.Pools{In: int(copyW.Load()), Out: int(copyW.Load()), Comp: int(sorter.width.Load())},
			TotalThreads: total,
			MaxCopyIn:    at.MaxCopyIn,
			WarmupChunks: at.WarmupChunks,
			Bytes:        units.BytesForElements(int64(n)),
			Registry:     at.Registry,
			Next:         fs.Observer,
			OnProvision: func(p model.Prediction) {
				if opts.Widths != nil {
					opts.Widths.SetPools(p.Pools)
				} else {
					if p.Pools.In > 0 {
						copyW.Store(int32(p.Pools.In))
					}
					if p.Pools.Comp > 0 {
						sorter.width.Store(int32(p.Pools.Comp))
					}
				}
				if at.OnDecision != nil {
					at.OnDecision(p)
				}
			},
		})
		fs.Observer = tuner
	}
	err := exec.RunContext(ctx, fs, opts.buffers())
	if tuner != nil {
		if dec, ok := tuner.Decision(); ok {
			stats.Retunes = 1
			stats.TunedPools = dec.Pools
		}
	}
	if table != nil {
		stats.Degraded, stats.AllocFailures = table.drain()
		stats.Staged = stats.Megachunks - stats.Degraded
	}
	if err != nil {
		return stats, err
	}
	if scratchPool != nil {
		scratchPool.Put(scratch) // clean completion: no abandoned attempt holds it
	}

	// Phase 2: final multiway merge across megachunks.
	return stats, finalMerge(ctx, xs, bounds, threads, opts.Recorder, opts.Elem)
}

// runRealBasic is Bender et al.'s basic algorithm: each megachunk is sorted
// with the *parallel* sort, then the megachunks are multiway merged.
func runRealBasic(ctx context.Context, xs []int64, threads, megachunkLen int, opts RealOptions) (RealStats, error) {
	n := len(xs)
	if megachunkLen <= 0 {
		megachunkLen = (n + 3) / 4
	}
	bounds := megachunkBounds(n, megachunkLen)
	stats := RealStats{Megachunks: len(bounds)}
	s := exec.Stages{
		NumChunks: len(bounds),
		ChunkLen:  func(i int) int { return bounds[i][1] - bounds[i][0] },
		Compute: func(i int, _ []int64) error {
			lo, hi := bounds[i][0], bounds[i][1]
			psort.Parallel(xs[lo:hi], threads)
			return nil
		},
	}
	if err := exec.RunContext(ctx, opts.finish(s), opts.buffers()); err != nil {
		return stats, err
	}
	return stats, finalMerge(ctx, xs, bounds, threads, opts.Recorder, ElemInt64)
}
