package mlmsort

import "fmt"

// ElemKind identifies how the int64 cells of a job's buffer are
// interpreted by the sort and merge kernels. The physical representation
// stays []int64 everywhere — staging buffers, spill run files, pool
// slices, the wire — and only the ordering-sensitive leaves (block
// sorts, megachunk merges, safe-window cuts) switch interpretation.
// That keeps every byte-moving layer (exec staging, spill IO, mem
// pooling) oblivious to key types: a record job is just an even-length
// cell buffer to them.
//
// float64 jobs need no kind here at all: the service edge maps IEEE-754
// bits through psort's order-preserving int64 bijection on ingress and
// inverts it on egress, so the whole pipeline sorts them as ElemInt64.
type ElemKind uint8

const (
	// ElemInt64 is the original interpretation: one cell per key.
	ElemInt64 ElemKind = iota
	// ElemKV interprets the buffer as fixed-width key+payload records,
	// two cells each (psort.KV layout: key, then payload). Buffer and
	// megachunk lengths must be even so records never straddle a cut.
	ElemKV
)

// Valid reports whether e is a known element kind.
func (e ElemKind) Valid() bool { return e == ElemInt64 || e == ElemKV }

func (e ElemKind) String() string {
	switch e {
	case ElemInt64:
		return "i64"
	case ElemKV:
		return "kv"
	}
	return fmt.Sprintf("mlmsort.ElemKind(%d)", uint8(e))
}

// cells reports how many int64 cells one logical element occupies.
func (e ElemKind) cells() int {
	if e == ElemKV {
		return 2
	}
	return 1
}

// validateBuffer rejects buffers whose cell count cannot hold whole
// elements of kind e.
func (e ElemKind) validateBuffer(n int) error {
	if !e.Valid() {
		return fmt.Errorf("mlmsort: unknown element kind %v", e)
	}
	if n%e.cells() != 0 {
		return fmt.Errorf("mlmsort: %d cells do not divide into %v elements", n, e)
	}
	return nil
}

// alignChunk rounds a megachunk cell length up to a whole element, so
// record jobs never split a record across a megachunk boundary.
func (e ElemKind) alignChunk(mcLen int) int {
	if c := e.cells(); mcLen%c != 0 {
		mcLen += c - mcLen%c
	}
	return mcLen
}
