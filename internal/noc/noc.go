// Package noc models KNL's on-die 2D mesh, the third resource the paper
// names when warning about oversized copy pools ("the copy threads use
// both MCDRAM and DDR bandwidth, as well as on-die resources such as
// network-on-chip bandwidth").
//
// The model is deliberately first-order: tiles on a rows x cols grid,
// eight MCDRAM controllers (EDCs) at the corners-ish positions and two DDR
// controllers at the side midpoints (KNL's physical floorplan, per Sodani
// et al., IEEE Micro 2016), dimension-ordered X-then-Y routing, and
// uniform spreading of each tile's memory traffic across the controllers
// of the targeted level. From a traffic assignment it computes per-link
// loads and the aggregate-bandwidth ceiling at which the hottest link
// saturates.
//
// Its role in the reproduction is a checked negative result: for the
// paper's workloads the mesh ceiling sits well above the DDR and MCDRAM
// limits, which is why neither the paper's model nor our arbiter needs a
// mesh term (BenchmarkAblationMeshCeiling quantifies the headroom).
package noc

import (
	"fmt"

	"knlmlm/internal/units"
)

// Coord is a tile position on the mesh.
type Coord struct{ Row, Col int }

// Mesh is the on-die network.
type Mesh struct {
	Rows, Cols int
	// LinkBandwidth is one mesh link's capacity per direction. KNL's mesh
	// links carry ~96 GB/s per direction at 1.7 GHz.
	LinkBandwidth units.BytesPerSec

	edcs   []Coord // MCDRAM controllers
	ddrMCs []Coord // DDR controllers
}

// KNLMesh returns the Xeon Phi 7250 floorplan approximation: a 6x7 grid,
// 8 EDCs in the top and bottom rows (two per quadrant), 2 DDR memory
// controllers at the row-middle edges.
func KNLMesh() *Mesh {
	m := &Mesh{Rows: 6, Cols: 7, LinkBandwidth: units.GBps(96)}
	m.edcs = []Coord{
		{0, 0}, {0, 2}, {0, 4}, {0, 6},
		{5, 0}, {5, 2}, {5, 4}, {5, 6},
	}
	m.ddrMCs = []Coord{{2, 0}, {2, 6}}
	return m
}

// Validate reports whether the mesh is well-formed.
func (m *Mesh) Validate() error {
	if m.Rows < 1 || m.Cols < 1 {
		return fmt.Errorf("noc: mesh %dx%d must be positive", m.Rows, m.Cols)
	}
	if m.LinkBandwidth <= 0 {
		return fmt.Errorf("noc: link bandwidth must be positive")
	}
	check := func(cs []Coord, kind string) error {
		if len(cs) == 0 {
			return fmt.Errorf("noc: no %s controllers", kind)
		}
		for _, c := range cs {
			if c.Row < 0 || c.Row >= m.Rows || c.Col < 0 || c.Col >= m.Cols {
				return fmt.Errorf("noc: %s controller %v outside mesh", kind, c)
			}
		}
		return nil
	}
	if err := check(m.edcs, "MCDRAM"); err != nil {
		return err
	}
	return check(m.ddrMCs, "DDR")
}

// EDCs and DDRMCs report the controller positions.
func (m *Mesh) EDCs() []Coord   { return append([]Coord(nil), m.edcs...) }
func (m *Mesh) DDRMCs() []Coord { return append([]Coord(nil), m.ddrMCs...) }

// linkID identifies a directed link by its endpoints.
type linkID struct{ from, to Coord }

// route lists the hops of dimension-ordered X-then-Y routing from a to b.
func route(a, b Coord) []linkID {
	var hops []linkID
	cur := a
	for cur.Col != b.Col {
		next := cur
		if b.Col > cur.Col {
			next.Col++
		} else {
			next.Col--
		}
		hops = append(hops, linkID{cur, next})
		cur = next
	}
	for cur.Row != b.Row {
		next := cur
		if b.Row > cur.Row {
			next.Row++
		} else {
			next.Row--
		}
		hops = append(hops, linkID{cur, next})
		cur = next
	}
	return hops
}

// Traffic is one tile's memory demand in bytes/second.
type Traffic struct {
	Tile  Coord
	ToMC  units.BytesPerSec // MCDRAM-level traffic
	ToDDR units.BytesPerSec // DDR-level traffic
}

// LinkLoads computes the steady-state load on every directed link for the
// given traffic, spreading each tile's level traffic uniformly across that
// level's controllers (matching the address interleaving of the real
// part). Request and response traffic both load the path (we charge the
// full demand along the round trip's forward path; the return path is
// symmetric by construction of dimension-ordered routing on a symmetric
// controller layout).
func (m *Mesh) LinkLoads(traffic []Traffic) map[linkID]units.BytesPerSec {
	loads := make(map[linkID]units.BytesPerSec)
	add := func(from, to Coord, amount units.BytesPerSec) {
		if amount <= 0 {
			return
		}
		for _, hop := range route(from, to) {
			loads[hop] += amount
		}
	}
	for _, t := range traffic {
		if len(m.edcs) > 0 && t.ToMC > 0 {
			share := units.BytesPerSec(float64(t.ToMC) / float64(len(m.edcs)))
			for _, c := range m.edcs {
				add(t.Tile, c, share)
			}
		}
		if len(m.ddrMCs) > 0 && t.ToDDR > 0 {
			share := units.BytesPerSec(float64(t.ToDDR) / float64(len(m.ddrMCs)))
			for _, c := range m.ddrMCs {
				add(t.Tile, c, share)
			}
		}
	}
	return loads
}

// MaxLinkUtilization reports the hottest link's load as a fraction of link
// bandwidth.
func (m *Mesh) MaxLinkUtilization(traffic []Traffic) float64 {
	var max units.BytesPerSec
	for _, load := range m.LinkLoads(traffic) {
		if load > max {
			max = load
		}
	}
	return float64(max) / float64(m.LinkBandwidth)
}

// UniformTraffic spreads an aggregate (MCDRAM, DDR) demand evenly over all
// tiles that are not controller stations — the natural assignment for a
// flat OpenMP thread layout.
func (m *Mesh) UniformTraffic(totalMC, totalDDR units.BytesPerSec) []Traffic {
	station := make(map[Coord]bool)
	for _, c := range m.edcs {
		station[c] = true
	}
	for _, c := range m.ddrMCs {
		station[c] = true
	}
	var tiles []Coord
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if !station[Coord{r, c}] {
				tiles = append(tiles, Coord{r, c})
			}
		}
	}
	out := make([]Traffic, 0, len(tiles))
	for _, tile := range tiles {
		out = append(out, Traffic{
			Tile:  tile,
			ToMC:  units.BytesPerSec(float64(totalMC) / float64(len(tiles))),
			ToDDR: units.BytesPerSec(float64(totalDDR) / float64(len(tiles))),
		})
	}
	return out
}

// Ceiling reports the aggregate memory bandwidth (split mcFraction to
// MCDRAM, the rest to DDR) at which the hottest mesh link saturates under
// a uniform tile layout. If this exceeds the memory devices' combined
// limits, the mesh is not the bottleneck.
func (m *Mesh) Ceiling(mcFraction float64) units.BytesPerSec {
	if mcFraction < 0 || mcFraction > 1 {
		panic(fmt.Sprintf("noc: MC fraction %v outside [0,1]", mcFraction))
	}
	const probe = 1e9 // 1 GB/s aggregate probe
	traffic := m.UniformTraffic(
		units.BytesPerSec(probe*mcFraction),
		units.BytesPerSec(probe*(1-mcFraction)),
	)
	u := m.MaxLinkUtilization(traffic)
	if u == 0 {
		return units.BytesPerSec(float64(units.Inf))
	}
	return units.BytesPerSec(probe / u)
}
