package noc

import (
	"testing"

	"knlmlm/internal/units"
)

func TestKNLMeshValid(t *testing.T) {
	m := KNLMesh()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.EDCs()) != 8 || len(m.DDRMCs()) != 2 {
		t.Errorf("controllers: %d EDCs, %d DDR MCs", len(m.EDCs()), len(m.DDRMCs()))
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []*Mesh{
		{Rows: 0, Cols: 7, LinkBandwidth: 1},
		{Rows: 6, Cols: 7, LinkBandwidth: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid mesh accepted", i)
		}
	}
	m := KNLMesh()
	m.edcs = append(m.edcs, Coord{99, 0})
	if err := m.Validate(); err == nil {
		t.Error("out-of-mesh controller accepted")
	}
	m2 := KNLMesh()
	m2.edcs = nil
	if err := m2.Validate(); err == nil {
		t.Error("mesh without EDCs accepted")
	}
}

func TestRouteDimensionOrdered(t *testing.T) {
	hops := route(Coord{0, 0}, Coord{2, 3})
	if len(hops) != 5 {
		t.Fatalf("route length = %d, want 5 (3 cols + 2 rows)", len(hops))
	}
	// X first: the first three hops move columns.
	for i := 0; i < 3; i++ {
		if hops[i].from.Row != 0 || hops[i].to.Row != 0 {
			t.Errorf("hop %d should move along the row: %+v", i, hops[i])
		}
	}
	// Then Y.
	for i := 3; i < 5; i++ {
		if hops[i].from.Col != 3 || hops[i].to.Col != 3 {
			t.Errorf("hop %d should move along the column: %+v", i, hops[i])
		}
	}
	if len(route(Coord{2, 2}, Coord{2, 2})) != 0 {
		t.Error("self-route should be empty")
	}
}

func TestLinkLoadsConservation(t *testing.T) {
	m := KNLMesh()
	// One tile, MCDRAM-only traffic: total link-bytes = demand/8 x total
	// hop count to the 8 EDCs.
	tile := Coord{3, 3}
	demand := units.GBps(8)
	loads := m.LinkLoads([]Traffic{{Tile: tile, ToMC: demand}})
	var sum float64
	for _, l := range loads {
		sum += float64(l)
	}
	var hopCount int
	for _, e := range m.EDCs() {
		hopCount += len(route(tile, e))
	}
	want := float64(demand) / 8 * float64(hopCount)
	if !units.AlmostEqual(sum, want, 1e-9) {
		t.Errorf("total link load = %v, want %v", sum, want)
	}
}

func TestMaxLinkUtilizationMonotone(t *testing.T) {
	m := KNLMesh()
	low := m.MaxLinkUtilization(m.UniformTraffic(units.GBps(100), units.GBps(20)))
	high := m.MaxLinkUtilization(m.UniformTraffic(units.GBps(400), units.GBps(90)))
	if low <= 0 || high <= low {
		t.Errorf("utilization not monotone: %v -> %v", low, high)
	}
}

func TestUniformTrafficExcludesStations(t *testing.T) {
	m := KNLMesh()
	traffic := m.UniformTraffic(units.GBps(42), units.GBps(42))
	stations := map[Coord]bool{}
	for _, c := range m.EDCs() {
		stations[c] = true
	}
	for _, c := range m.DDRMCs() {
		stations[c] = true
	}
	if len(traffic) != m.Rows*m.Cols-len(stations) {
		t.Errorf("traffic covers %d tiles, want %d", len(traffic), m.Rows*m.Cols-len(stations))
	}
	var total float64
	for _, tr := range traffic {
		if stations[tr.Tile] {
			t.Errorf("controller station %v carries compute traffic", tr.Tile)
		}
		total += float64(tr.ToMC)
	}
	if !units.AlmostEqual(total, 42e9, 1e-9) {
		t.Errorf("MC traffic sums to %v, want 42 GB/s", total)
	}
}

// The checked negative result: at the paper's full load (400 GB/s MCDRAM +
// 90 GB/s DDR), the hottest mesh link stays below saturation, so the mesh
// rightly has no term in the paper's model or our arbiter.
func TestMeshNotBottleneckAtPaperLoads(t *testing.T) {
	m := KNLMesh()
	u := m.MaxLinkUtilization(m.UniformTraffic(units.GBps(400), units.GBps(90)))
	if u >= 1 {
		t.Errorf("mesh saturated (%.2f) at paper loads — contradicts the floorplan", u)
	}
	ceiling := m.Ceiling(400.0 / 490.0)
	if float64(ceiling) < 490e9 {
		t.Errorf("mesh ceiling %v below the 490 GB/s the devices can serve", ceiling)
	}
}

func TestCeilingPanicsOnBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad fraction should panic")
		}
	}()
	KNLMesh().Ceiling(1.5)
}

func TestCeilingScalesWithLinkBandwidth(t *testing.T) {
	m := KNLMesh()
	c1 := m.Ceiling(0.8)
	m.LinkBandwidth *= 2
	c2 := m.Ceiling(0.8)
	if !units.AlmostEqual(float64(c2), 2*float64(c1), 1e-9) {
		t.Errorf("ceiling should scale linearly with link bandwidth: %v vs %v", c1, c2)
	}
}
