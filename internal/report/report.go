// Package report renders the reproduction's tables and figure series as
// aligned ASCII (for terminals and EXPERIMENTS.md), markdown, and CSV.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple labelled grid. Cells are pre-formatted strings; the
// renderer handles alignment only.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; it must match the header width.
func (t *Table) AddRow(cells ...string) {
	if len(t.Headers) > 0 && len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, header has %d", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

func (t *Table) widths() []int {
	n := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	return w
}

// ASCII renders the table with space-aligned columns.
func (t *Table) ASCII() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, x := range w {
			total += x
		}
		b.WriteString(strings.Repeat("-", total+2*(len(w)-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("| ")
		b.WriteString(strings.Join(cells, " | "))
		b.WriteString(" |\n")
	}
	row(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted per RFC 4180).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Seconds formats a seconds value the way the paper's Table 1 prints times.
func Seconds(v float64) string { return fmt.Sprintf("%.2f", v) }

// Speedup formats a speedup factor.
func SpeedupCell(v float64) string { return fmt.Sprintf("%.2fx", v) }
