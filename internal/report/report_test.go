package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "Demo", Headers: []string{"A", "Bee", "C"}}
	t.AddRow("1", "2", "3")
	t.AddRow("long-cell", "x", "y")
	return t
}

func TestASCIIAlignment(t *testing.T) {
	s := sample().ASCII()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	// Header and rows share column offsets: "Bee" and "2" start together.
	h := strings.Index(lines[1], "Bee")
	r := strings.Index(lines[3], "2")
	if h != r {
		t.Errorf("columns misaligned: header at %d, row at %d\n%s", h, r, s)
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("missing separator: %q", lines[2])
	}
}

func TestASCIIWithoutTitleOrHeaders(t *testing.T) {
	tab := &Table{}
	tab.AddRow("a", "b")
	s := tab.ASCII()
	if !strings.HasPrefix(s, "a") {
		t.Errorf("ASCII = %q", s)
	}
}

func TestMarkdown(t *testing.T) {
	s := sample().Markdown()
	for _, want := range []string{"**Demo**", "| A | Bee | C |", "| --- | --- | --- |", "| long-cell | x | y |"} {
		if !strings.Contains(s, want) {
			t.Errorf("markdown missing %q:\n%s", want, s)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := &Table{Headers: []string{"name", "value"}}
	tab.AddRow(`has,comma`, `has"quote`)
	tab.AddRow("plain", "line\nbreak")
	s := tab.CSV()
	for _, want := range []string{`"has,comma"`, `"has""quote"`, "\"line\nbreak\""} {
		if !strings.Contains(s, want) {
			t.Errorf("CSV missing %q:\n%s", want, s)
		}
	}
	if !strings.HasPrefix(s, "name,value\n") {
		t.Errorf("CSV header wrong: %q", s)
	}
}

func TestAddRowWidthMismatchPanics(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("mismatched row should panic")
		}
	}()
	tab.AddRow("only-one")
}

func TestFormatters(t *testing.T) {
	if got := Seconds(11.923); got != "11.92" {
		t.Errorf("Seconds = %q", got)
	}
	if got := SpeedupCell(1.9); got != "1.90x" {
		t.Errorf("SpeedupCell = %q", got)
	}
}
