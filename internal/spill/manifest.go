// Crash-safe spill recovery. A Store journals every run-file lifecycle
// step into an append-only MANIFEST inside its directory, and a
// Store-owning process marks its spill root with an owner.pid file. A
// process that crashes mid-spill leaves both behind; the next process to
// start against the same parent directory scans for roots whose owner is
// dead and reclaims their run files — otherwise the orphaned bytes pin
// real disk capacity that no live budget ledger accounts for, forever.
//
// The journal is advisory: the run files themselves are the ground truth
// for how many bytes recovery frees (a crash can land between a write
// and its journal line). The manifest's job is attribution — telling a
// recovery report how many of the orphaned files were sealed, readable
// runs versus half-written wreckage — and making the directory
// self-describing for a human poking at a crashed machine.
package spill

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

const (
	// ManifestName is the append-only run-lifecycle journal each Store
	// keeps inside its directory.
	ManifestName = "MANIFEST"
	// OwnerMarkerName is the liveness marker a Store-owning process
	// writes into its spill root: the owning PID, one line.
	OwnerMarkerName = "owner.pid"
	// DefaultOrphanAge is the age below which an unmarked spill directory
	// is presumed to belong to a still-starting process and left alone.
	DefaultOrphanAge = 15 * time.Minute
)

// journal appends one line to the store's manifest. Best-effort by
// design: a failed journal write must never fail the spill itself.
func (s *Store) journal(format string, args ...any) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.manifest == nil {
		return
	}
	fmt.Fprintf(s.manifest, format+"\n", args...)
}

// RunRecord is one run's state reconstructed from a manifest.
type RunRecord struct {
	ID     int
	Sealed bool
	// Elems/Bytes are the sealed sizes (zero for unsealed runs).
	Elems, Bytes int64
}

// ReadManifest reconstructs per-run state from a store directory's
// manifest journal: latest entry per run wins, removed runs drop out.
// A missing manifest yields an empty map, not an error; malformed lines
// (torn final write of a crashed process) are skipped.
func ReadManifest(dir string) (map[int]*RunRecord, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return map[int]*RunRecord{}, nil
		}
		return nil, fmt.Errorf("spill: open manifest: %w", err)
	}
	defer f.Close()
	runs := map[int]*RunRecord{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		switch fields[0] {
		case "create":
			runs[id] = &RunRecord{ID: id}
		case "seal":
			if len(fields) < 4 {
				continue
			}
			elems, err1 := strconv.ParseInt(fields[2], 10, 64)
			bytes, err2 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil {
				continue
			}
			runs[id] = &RunRecord{ID: id, Sealed: true, Elems: elems, Bytes: bytes}
		case "remove":
			delete(runs, id)
		}
	}
	if err := sc.Err(); err != nil {
		return runs, fmt.Errorf("spill: read manifest: %w", err)
	}
	return runs, nil
}

// WriteOwnerMarker stamps dir as owned by the calling process, so a
// later RecoverOrphans scan can tell a live owner from a dead one.
func WriteOwnerMarker(dir string) error {
	return os.WriteFile(filepath.Join(dir, OwnerMarkerName),
		[]byte(strconv.Itoa(os.Getpid())+"\n"), 0o644)
}

// ownerState reports whether dir carries an owner marker and, if so,
// whether that process is still alive.
func ownerState(dir string) (marked, alive bool) {
	b, err := os.ReadFile(filepath.Join(dir, OwnerMarkerName))
	if err != nil {
		return false, false
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || pid <= 0 {
		// A malformed or non-positive pid can never name a live process —
		// and must never reach kill(2), where 0/-1 mean process groups.
		return true, false
	}
	// Signal 0 probes existence without delivering anything. EPERM means
	// the process exists but belongs to someone else: alive.
	err = syscall.Kill(pid, 0)
	return true, err == nil || err == syscall.EPERM
}

// OrphanReport summarizes one recovery scan.
type OrphanReport struct {
	// Dirs is the number of orphaned directories removed; Skipped the
	// directories left alone (live owner, or unmarked but too fresh).
	Dirs, Skipped int
	// Runs and Bytes count the orphaned run files reclaimed and their
	// on-disk bytes — the disk-budget capacity the crash had pinned.
	Runs  int
	Bytes int64
	// SealedRuns is how many reclaimed runs their manifests record as
	// sealed (complete); the rest were half-written at the crash.
	SealedRuns int
}

// RecoverOrphans scans parent for spill directories abandoned by a dead
// process and deletes them, reporting what was reclaimed. It considers
// scheduler roots ("sched-spill-*", judged by their owner.pid marker)
// and bare store directories ("spillruns-*" directly under parent, which
// carry no marker and are age-gated). Directories owned by a live
// process are never touched; unmarked directories younger than minAge
// (<= 0 selects DefaultOrphanAge) are presumed mid-creation and left
// alone. parent == "" selects the OS temp dir, matching where Stores
// and schedulers place their directories by default.
func RecoverOrphans(parent string, minAge time.Duration) (OrphanReport, error) {
	if parent == "" {
		parent = os.TempDir()
	}
	if minAge <= 0 {
		minAge = DefaultOrphanAge
	}
	entries, err := os.ReadDir(parent)
	if err != nil {
		return OrphanReport{}, fmt.Errorf("spill: scan %s: %w", parent, err)
	}
	var rep OrphanReport
	now := time.Now()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		isRoot := strings.HasPrefix(name, "sched-spill-")
		isStore := strings.HasPrefix(name, "spillruns-")
		if !isRoot && !isStore {
			continue
		}
		dir := filepath.Join(parent, name)
		marked, alive := ownerState(dir)
		if alive {
			rep.Skipped++
			continue
		}
		if !marked {
			info, err := e.Info()
			if err != nil || now.Sub(info.ModTime()) < minAge {
				rep.Skipped++
				continue
			}
		}
		runs, bytes, sealed := tallyRuns(dir)
		if err := os.RemoveAll(dir); err != nil {
			rep.Skipped++
			continue
		}
		rep.Dirs++
		rep.Runs += runs
		rep.Bytes += bytes
		rep.SealedRuns += sealed
	}
	return rep, nil
}

// tallyRuns walks a doomed directory tree counting run files, their
// bytes, and how many of them their manifests record as sealed.
func tallyRuns(dir string) (runs int, bytes int64, sealed int) {
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		name := d.Name()
		if !strings.HasPrefix(name, "run-") || !strings.HasSuffix(name, ".bin") {
			return nil
		}
		runs++
		if info, err := d.Info(); err == nil {
			bytes += info.Size()
		}
		return nil
	})
	// Attribution pass: every directory with a manifest contributes its
	// sealed-run count, capped by what is actually on disk.
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return nil
		}
		recs, err := ReadManifest(path)
		if err != nil {
			return nil
		}
		for _, r := range recs {
			if r.Sealed {
				if _, err := os.Stat(filepath.Join(path, fmt.Sprintf("run-%06d.bin", r.ID))); err == nil {
					sealed++
				}
			}
		}
		return nil
	})
	return runs, bytes, sealed
}
