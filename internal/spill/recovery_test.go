package spill

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestManifestReconstruction(t *testing.T) {
	s := mustStore(t, Config{})
	writeRun(t, s, 1, []int64{3, 1, 2})
	writeRun(t, s, 2, []int64{9, 8})
	w, err := s.CreateRun(3) // created, never sealed: a crash mid-write
	if err != nil {
		t.Fatalf("CreateRun: %v", err)
	}
	if err := w.Append([]int64{5}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	s.RemoveRun(2)

	recs, err := ReadManifest(s.Dir())
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (run 2 removed): %+v", len(recs), recs)
	}
	r1 := recs[1]
	if r1 == nil || !r1.Sealed || r1.Elems != 3 || r1.Bytes != 24 {
		t.Fatalf("run 1 record wrong: %+v", r1)
	}
	r3 := recs[3]
	if r3 == nil || r3.Sealed {
		t.Fatalf("run 3 should be recorded unsealed: %+v", r3)
	}
	_ = w.Close()
}

func TestManifestMissingAndTornLines(t *testing.T) {
	dir := t.TempDir()
	recs, err := ReadManifest(dir)
	if err != nil || len(recs) != 0 {
		t.Fatalf("missing manifest: recs=%v err=%v, want empty and nil", recs, err)
	}
	// Torn tail (crash mid-append) and garbage must be skipped, not fatal.
	body := "create 1\nseal 1 10 80\ncreate 2\nnonsense line\nseal 2 5"
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if r := recs[1]; r == nil || !r.Sealed || r.Elems != 10 {
		t.Fatalf("run 1: %+v", r)
	}
	if r := recs[2]; r == nil || r.Sealed {
		t.Fatalf("torn seal must leave run 2 unsealed: %+v", r)
	}
}

func TestStoreCloseIdempotent(t *testing.T) {
	cfg := Config{Dir: t.TempDir()}
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	writeRun(t, s, 1, []int64{1, 2, 3})
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close must be a nil no-op, got %v", err)
	}
	if _, err := os.Stat(s.Dir()); !os.IsNotExist(err) {
		t.Fatalf("store dir survives Close: %v", err)
	}
	if _, err := s.CreateRun(9); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateRun after Close: %v, want ErrClosed", err)
	}
}

func TestCloseDuringActiveReadDefersRemoval(t *testing.T) {
	s, err := NewStore(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	writeRun(t, s, 1, []int64{4, 5, 6})
	r, err := s.OpenRun(1)
	if err != nil {
		t.Fatalf("OpenRun: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close with open reader: %v", err)
	}
	// The directory must outlive Close while the reader holds it open.
	if _, err := os.Stat(s.Dir()); err != nil {
		t.Fatalf("store dir removed under an open reader: %v", err)
	}
	// But the reader cannot keep consuming a store whose deletion is
	// pending: Fill fails fast with the typed error.
	var dst [4]int64
	if _, err := r.Fill(dst[:]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Fill after Close: %v, want ErrClosed", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("reader Close: %v", err)
	}
	if _, err := os.Stat(s.Dir()); !os.IsNotExist(err) {
		t.Fatalf("last reader Close did not remove the dir: %v", err)
	}
	// Closing the reader twice is as safe as closing the store twice.
	if err := r.Close(); err != nil {
		t.Fatalf("second reader Close: %v", err)
	}
}

func TestRecoverOrphansJudgment(t *testing.T) {
	parent := t.TempDir()

	// A root owned by this (live) process must be skipped.
	live := filepath.Join(parent, "sched-spill-live")
	if err := os.Mkdir(live, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteOwnerMarker(live); err != nil {
		t.Fatalf("WriteOwnerMarker: %v", err)
	}

	// A root marked with a dead owner is reclaimed regardless of age.
	// pid 0 can never name a live process (and must never reach kill).
	dead := filepath.Join(parent, "sched-spill-dead")
	store := filepath.Join(dead, "spillruns-x")
	if err := os.MkdirAll(store, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dead, OwnerMarkerName), []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(store, "run-000001.bin"), make([]byte, 80), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(store, "run-000002.bin"), make([]byte, 40), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(store, ManifestName),
		[]byte("create 1\nseal 1 10 80\ncreate 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// An unmarked store directory younger than minAge is presumed
	// mid-creation and skipped.
	fresh := filepath.Join(parent, "spillruns-fresh")
	if err := os.Mkdir(fresh, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(fresh, "run-000001.bin"), make([]byte, 8), 0o644); err != nil {
		t.Fatal(err)
	}

	// The same directory past minAge is an orphan.
	aged := filepath.Join(parent, "spillruns-aged")
	if err := os.Mkdir(aged, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(aged, "run-000001.bin"), make([]byte, 16), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(aged, old, old); err != nil {
		t.Fatal(err)
	}

	// Unrelated directories are never considered.
	other := filepath.Join(parent, "unrelated")
	if err := os.Mkdir(other, 0o755); err != nil {
		t.Fatal(err)
	}

	rep, err := RecoverOrphans(parent, 10*time.Minute)
	if err != nil {
		t.Fatalf("RecoverOrphans: %v", err)
	}
	if rep.Dirs != 2 {
		t.Fatalf("Dirs = %d, want 2 (dead root + aged store): %+v", rep.Dirs, rep)
	}
	if rep.Skipped != 2 {
		t.Fatalf("Skipped = %d, want 2 (live root + fresh store): %+v", rep.Skipped, rep)
	}
	if rep.Runs != 3 || rep.Bytes != 136 {
		t.Fatalf("Runs/Bytes = %d/%d, want 3/136: %+v", rep.Runs, rep.Bytes, rep)
	}
	if rep.SealedRuns != 1 {
		t.Fatalf("SealedRuns = %d, want 1 (only run 1 sealed): %+v", rep.SealedRuns, rep)
	}
	for _, dir := range []string{dead, aged} {
		if _, err := os.Stat(dir); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived recovery", dir)
		}
	}
	for _, dir := range []string{live, fresh, other} {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("non-orphan %s was removed: %v", dir, err)
		}
	}

	// A second scan finds nothing new to reclaim.
	rep2, err := RecoverOrphans(parent, 10*time.Minute)
	if err != nil {
		t.Fatalf("second RecoverOrphans: %v", err)
	}
	if rep2.Dirs != 0 {
		t.Fatalf("second scan reclaimed %d dirs, want 0", rep2.Dirs)
	}
}

func TestReaderEOFAfterDrain(t *testing.T) {
	// Regression guard for the refcount path: a reader drained to EOF and
	// closed before Store.Close must not defer the removal.
	s, err := NewStore(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	writeRun(t, s, 1, []int64{1})
	r, err := s.OpenRun(1)
	if err != nil {
		t.Fatalf("OpenRun: %v", err)
	}
	var dst [2]int64
	if n, err := r.Fill(dst[:]); n != 1 || err != nil {
		t.Fatalf("Fill: n=%d err=%v", n, err)
	}
	if _, err := r.Fill(dst[:]); err != io.EOF {
		t.Fatalf("Fill at end: %v, want io.EOF", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("reader Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(s.Dir()); !os.IsNotExist(err) {
		t.Fatalf("dir survives Close with no open readers: %v", err)
	}
}
