// Package spill is the third memory level of the repository's chunk-and-
// buffer discipline: a disk-backed store of sorted megachunk runs. The
// paper's premise — stage what fits in the fast tier, stream the rest
// through it — extends one level down when the working set does not fit
// in DDR either (the out-of-core regime of Beyond-16GB stencils,
// arXiv:1709.02125): sorted runs that would otherwise accumulate in DDR
// are written to sequential run files and merged back as streams.
//
// The store deliberately mirrors internal/mem's budget discipline and
// internal/sched's ledger semantics one tier further out:
//
//   - every run file's bytes are charged against a configurable disk
//     budget before they are written, so a spill tier can never silently
//     exceed the capacity its owner leased for it;
//   - writers and readers move data in large sequential blocks through a
//     single reused buffer (the portable analog of O_DIRECT streaming:
//     the access pattern is what makes disks fast, not the flag);
//   - all IO consults an optional fault injector, so chaos plans can
//     exercise run-file write/read failures with the same retry/degrade
//     semantics internal/exec gives every other stage.
//
// A Store owns one temporary directory; Close removes it and every run in
// it, so no path through completion, cancellation, or fault-abort can
// leave run files behind.
package spill

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"knlmlm/internal/telemetry"
	"knlmlm/internal/wire"
)

// IOFaults injects run-file IO failures; fault.Injector satisfies it. A
// nil IOFaults never fails. The run index keys the decision so a seeded
// injector replays identically across retries of the same run.
type IOFaults interface {
	FailWrite(run int) bool
	FailRead(run int) bool
}

// BudgetError reports a write refused because it would push the store's
// footprint past its byte budget. It is the disk tier's TooLarge analog:
// retrying the identical write cannot succeed while the budget stands.
type BudgetError struct {
	Need, Budget int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("spill: run store needs %d bytes, budget is %d", e.Need, e.Budget)
}

// IOFaultError is the error surfaced by an injected run-file IO failure.
type IOFaultError struct {
	Op  string // "write" or "read"
	Run int
}

func (e *IOFaultError) Error() string {
	return fmt.Sprintf("spill: injected %s fault on run %d", e.Op, e.Run)
}

// ErrClosed is returned by store operations after Close.
var ErrClosed = errors.New("spill: store closed")

// Config describes a Store. The zero value is usable: runs land in a
// fresh directory under the OS temp dir with a 1 MiB IO buffer and no
// byte budget.
type Config struct {
	// Dir is the parent directory the store's private temp dir is created
	// in; empty selects os.TempDir().
	Dir string
	// MaxBytes caps the store's on-disk footprint; writes past it fail
	// with a BudgetError. Zero means unbounded.
	MaxBytes int64
	// BufBytes is the writer/reader IO buffer size; sequential block IO
	// at this granularity is the store's whole performance story. Zero
	// selects 1 MiB.
	BufBytes int
	// Faults, when non-nil, injects write/read failures (chaos testing).
	Faults IOFaults
	// Registry, when non-nil, receives the spill_* metric families.
	Registry *telemetry.Registry
}

// Store is a collection of run files in one private temp directory. It is
// safe for concurrent use; individual RunWriters/RunReaders are not (each
// belongs to one goroutine at a time, like any file handle).
type Store struct {
	cfg Config
	dir string

	mu        sync.Mutex
	closed    bool
	footprint int64            // bytes charged to live runs
	runs      map[int]*runMeta // live runs by id
	// readers counts open RunReaders; removePending marks a Close that
	// arrived while readers were active, deferring the directory removal
	// to the last reader's Close so no reader ever races a RemoveAll.
	readers       int
	removePending bool

	// jmu serializes appends to the manifest journal (see manifest.go);
	// manifest is nil when the journal could not be created (the store
	// works, it just leaves no crash-recovery breadcrumbs).
	jmu      sync.Mutex
	manifest *os.File

	m storeMetrics
}

type runMeta struct {
	path  string
	elems int64
	bytes int64
}

// NewStore creates a store with a fresh private directory.
func NewStore(cfg Config) (*Store, error) {
	if cfg.BufBytes <= 0 {
		cfg.BufBytes = 1 << 20
	}
	if cfg.MaxBytes < 0 {
		return nil, fmt.Errorf("spill: negative byte budget %d", cfg.MaxBytes)
	}
	dir, err := os.MkdirTemp(cfg.Dir, "spillruns-")
	if err != nil {
		return nil, fmt.Errorf("spill: create run dir: %w", err)
	}
	s := &Store{cfg: cfg, dir: dir, runs: map[int]*runMeta{}}
	// The manifest journal is advisory (recovery breadcrumbs for a
	// crashed owner); a store that cannot journal still stores.
	if f, err := os.OpenFile(filepath.Join(dir, ManifestName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
		s.manifest = f
	}
	s.m.init(cfg.Registry)
	s.m.budget.Set(float64(cfg.MaxBytes))
	return s, nil
}

// Dir reports the store's private run directory.
func (s *Store) Dir() string { return s.dir }

// BudgetBytes reports the configured disk budget (0 = uncapped).
func (s *Store) BudgetBytes() int64 { return s.cfg.MaxBytes }

// FootprintBytes reports the bytes currently charged to live runs.
func (s *Store) FootprintBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.footprint
}

// LiveRuns reports the number of run files currently on disk.
func (s *Store) LiveRuns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// RunElems reports the element count of a live run (0 for unknown ids).
func (s *Store) RunElems(id int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runs[id]; ok {
		return r.elems
	}
	return 0
}

// reserve charges n bytes against the budget, failing loudly past it.
func (s *Store) reserve(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.cfg.MaxBytes > 0 && s.footprint+n > s.cfg.MaxBytes {
		s.m.budgetRefusals.Add(1)
		return &BudgetError{Need: s.footprint + n, Budget: s.cfg.MaxBytes}
	}
	s.footprint += n
	s.m.footprint.Set(float64(s.footprint))
	return nil
}

// credit returns n bytes to the budget (run removed or writer aborted).
func (s *Store) credit(n int64) {
	s.mu.Lock()
	if s.footprint >= n {
		s.footprint -= n
	} else {
		s.footprint = 0
	}
	s.m.footprint.Set(float64(s.footprint))
	s.mu.Unlock()
}

// runPath names run id's file.
func (s *Store) runPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("run-%06d.bin", id))
}

// CreateRun opens a writer for run id, replacing any previous run with
// the same id (a retried copy-out attempt re-spills from scratch; the
// half-written file from the failed attempt must not survive it).
func (s *Store) CreateRun(id int) (*RunWriter, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	prev := s.runs[id]
	delete(s.runs, id)
	s.m.liveRuns.Set(float64(len(s.runs)))
	s.mu.Unlock()
	if prev != nil {
		s.credit(prev.bytes)
		_ = os.Remove(prev.path)
		s.m.runsDeleted.Add(1)
	}

	f, err := os.Create(s.runPath(id))
	if err != nil {
		return nil, fmt.Errorf("spill: create run %d: %w", id, err)
	}
	s.journal("create %d", id)
	s.m.runsCreated.Add(1)
	return &RunWriter{
		s:   s,
		id:  id,
		f:   f,
		buf: make([]byte, 0, s.cfg.BufBytes),
	}, nil
}

// RemoveRun deletes run id's file and credits its bytes back to the
// budget. Unknown ids are a no-op.
func (s *Store) RemoveRun(id int) {
	s.mu.Lock()
	r, ok := s.runs[id]
	delete(s.runs, id)
	s.m.liveRuns.Set(float64(len(s.runs)))
	s.mu.Unlock()
	if !ok {
		return
	}
	s.credit(r.bytes)
	_ = os.Remove(r.path)
	s.journal("remove %d", id)
	s.m.runsDeleted.Add(1)
}

// OpenRun opens a sequential reader over a completed run.
func (s *Store) OpenRun(id int) (*RunReader, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("spill: unknown run %d", id)
	}
	f, err := os.Open(r.path)
	if err != nil {
		return nil, fmt.Errorf("spill: open run %d: %w", id, err)
	}
	s.mu.Lock()
	if s.closed {
		// Close won the race between the check above and the open.
		s.mu.Unlock()
		f.Close()
		return nil, ErrClosed
	}
	s.readers++
	s.mu.Unlock()
	return &RunReader{
		s:      s,
		id:     id,
		f:      f,
		remain: r.elems,
		buf:    make([]byte, s.cfg.BufBytes),
	}, nil
}

// Close deletes every run file and the store's directory. Further store
// operations fail with ErrClosed, including Fill on already-open
// readers (typed, fail-fast — a reader never observes files vanishing
// under it). If readers are open when Close arrives, the directory
// removal is deferred to the last reader's Close; Close itself returns
// immediately. Close is idempotent: the second and later calls return
// nil and do nothing.
func (s *Store) Close() error {
	s.jmu.Lock()
	if s.manifest != nil {
		s.manifest.Close()
		s.manifest = nil
	}
	s.jmu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	n := len(s.runs)
	s.runs = map[int]*runMeta{}
	s.footprint = 0
	s.m.liveRuns.Set(0)
	s.m.footprint.Set(0)
	defer s.m.runsDeleted.Add(int64(n))
	if s.readers > 0 {
		s.removePending = true
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	return os.RemoveAll(s.dir)
}

// Stats is a point-in-time snapshot of the store's IO counters.
type Stats struct {
	RunsCreated, RunsDeleted  int64
	BytesWritten, BytesRead   int64
	WriteFaults, ReadFaults   int64
	BudgetRefusals, LiveBytes int64
}

// Stats reports the store's traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	live := s.footprint
	s.mu.Unlock()
	return Stats{
		RunsCreated:    s.m.runsCreated.Value(),
		RunsDeleted:    s.m.runsDeleted.Value(),
		BytesWritten:   s.m.bytesWritten.Value(),
		BytesRead:      s.m.bytesRead.Value(),
		WriteFaults:    s.m.writeFaults.Value(),
		ReadFaults:     s.m.readFaults.Value(),
		BudgetRefusals: s.m.budgetRefusals.Value(),
		LiveBytes:      live,
	}
}

// RunWriter appends int64 keys to one run file through a large sequential
// buffer. Not safe for concurrent use.
type RunWriter struct {
	s     *Store
	id    int
	f     *os.File
	buf   []byte
	elems int64
	bytes int64
	err   error
}

// Append writes the keys to the run. The bytes are charged against the
// store's budget before they touch the disk; an injected write fault or a
// budget refusal fails the whole append (the caller's retry re-creates
// the run, so a half-charged append cannot leak).
func (w *RunWriter) Append(keys []int64) error {
	if w.err != nil {
		return w.err
	}
	if w.s.cfg.Faults != nil && w.s.cfg.Faults.FailWrite(w.id) {
		w.s.m.writeFaults.Add(1)
		w.err = &IOFaultError{Op: "write", Run: w.id}
		return w.err
	}
	n := int64(len(keys)) * 8
	if err := w.s.reserve(n); err != nil {
		w.err = err
		return err
	}
	w.bytes += n
	count := int64(len(keys))
	// Run files share the wire format's byte layout, so the hot loop is a
	// bulk conversion (a memmove on little-endian builds) instead of a
	// per-element encode: buffer-sized chunks in, flush when full.
	for len(keys) > 0 {
		take := len(keys)
		if room := (w.s.cfg.BufBytes - len(w.buf) + 7) / 8; take > room {
			take = room
		}
		w.buf = wire.AppendInt64s(w.buf, keys[:take])
		keys = keys[take:]
		if len(w.buf) >= w.s.cfg.BufBytes {
			if err := w.flush(); err != nil {
				return err
			}
		}
	}
	w.elems += count
	return nil
}

func (w *RunWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.err = fmt.Errorf("spill: write run %d: %w", w.id, err)
		return w.err
	}
	w.s.m.bytesWritten.Add(int64(len(w.buf)))
	w.buf = w.buf[:0]
	return nil
}

// Elems reports the elements appended so far.
func (w *RunWriter) Elems() int64 { return w.elems }

// Close flushes and seals the run, registering it as live and readable.
// A writer closed after an error (or whose flush fails) deletes its file
// and credits its bytes back instead of registering a corrupt run.
func (w *RunWriter) Close() error {
	if w.f == nil {
		return w.err
	}
	if w.err == nil {
		w.err = w.flush()
	}
	ferr := w.f.Close()
	f := w.f
	w.f = nil
	if w.err == nil && ferr != nil {
		w.err = fmt.Errorf("spill: close run %d: %w", w.id, ferr)
	}
	if w.err != nil {
		_ = os.Remove(f.Name())
		w.s.credit(w.bytes)
		return w.err
	}
	w.s.mu.Lock()
	if w.s.closed {
		w.s.mu.Unlock()
		_ = os.Remove(f.Name())
		w.s.credit(w.bytes)
		return ErrClosed
	}
	w.s.runs[w.id] = &runMeta{path: f.Name(), elems: w.elems, bytes: w.bytes}
	w.s.m.liveRuns.Set(float64(len(w.s.runs)))
	w.s.mu.Unlock()
	w.s.journal("seal %d %d %d", w.id, w.elems, w.bytes)
	return nil
}

// RunReader streams a run's keys back in sequential blocks. Not safe for
// concurrent use.
type RunReader struct {
	s      *Store
	id     int
	f      *os.File
	remain int64
	buf    []byte
	have   int // valid bytes in buf
	pos    int // consumed bytes in buf
}

// Fill decodes up to len(dst) keys into dst and reports how many were
// written. At end of run it returns (0, io.EOF). An injected read fault
// consumes nothing, so a retried Fill resumes exactly where it left off.
func (r *RunReader) Fill(dst []int64) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if r.remain == 0 && r.have == r.pos {
		return 0, io.EOF
	}
	r.s.mu.Lock()
	closed := r.s.closed
	r.s.mu.Unlock()
	if closed {
		// The store closed under this reader: fail fast with the typed
		// error instead of half-reading a run whose deletion is pending.
		return 0, ErrClosed
	}
	if r.s.cfg.Faults != nil && r.s.cfg.Faults.FailRead(r.id) {
		r.s.m.readFaults.Add(1)
		return 0, &IOFaultError{Op: "read", Run: r.id}
	}
	n := 0
	for n < len(dst) {
		if r.have-r.pos < 8 {
			if r.remain == 0 {
				break
			}
			if err := r.refill(); err != nil {
				if n > 0 && err == io.EOF {
					break
				}
				return n, err
			}
			continue
		}
		// Bulk-decode every whole key the buffer holds (a memmove on
		// little-endian builds) instead of one encoding/binary round per
		// element.
		take := (r.have - r.pos) / 8
		if rem := len(dst) - n; take > rem {
			take = rem
		}
		if int64(take) > r.remain {
			take = int(r.remain)
		}
		if take == 0 {
			break
		}
		wire.DecodeInt64s(dst[n:n+take], r.buf[r.pos:r.pos+take*8])
		r.pos += take * 8
		r.remain -= int64(take)
		n += take
	}
	if n == 0 {
		return 0, io.EOF
	}
	r.s.m.bytesRead.Add(int64(n) * 8)
	return n, nil
}

// refill pulls the next sequential block from the file, carrying over any
// partial key bytes at the buffer tail.
func (r *RunReader) refill() error {
	carry := r.have - r.pos
	if carry > 0 {
		copy(r.buf, r.buf[r.pos:r.have])
	}
	r.pos, r.have = 0, carry
	m, err := r.f.Read(r.buf[carry:])
	r.have += m
	if m > 0 {
		return nil
	}
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("spill: read run %d: %w", r.id, err)
	}
	return nil
}

// Close releases the reader's file handle. The run stays live; RemoveRun
// (or Store.Close) deletes it. The last reader to close after a deferred
// Store.Close performs the store's directory removal.
func (r *RunReader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	s := r.s
	s.mu.Lock()
	s.readers--
	removeNow := s.removePending && s.readers == 0
	if removeNow {
		s.removePending = false
	}
	s.mu.Unlock()
	if removeNow {
		os.RemoveAll(s.dir)
	}
	return err
}

// storeMetrics is the spill_* metric family set; with a nil registry a
// private one keeps the hot paths branch-free.
type storeMetrics struct {
	runsCreated    *telemetry.Counter
	runsDeleted    *telemetry.Counter
	bytesWritten   *telemetry.Counter
	bytesRead      *telemetry.Counter
	writeFaults    *telemetry.Counter
	readFaults     *telemetry.Counter
	budgetRefusals *telemetry.Counter
	liveRuns       *telemetry.Gauge
	footprint      *telemetry.Gauge
	budget         *telemetry.Gauge
}

func (m *storeMetrics) init(reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m.runsCreated = reg.Counter("spill_runs_created_total", "Spill run files created.", nil)
	m.runsDeleted = reg.Counter("spill_runs_deleted_total", "Spill run files deleted.", nil)
	m.bytesWritten = reg.Counter("spill_bytes_written_total", "Bytes written to spill run files.", nil)
	m.bytesRead = reg.Counter("spill_bytes_read_total", "Bytes read back from spill run files.", nil)
	m.writeFaults = reg.Counter("spill_io_faults_total", "Injected spill IO faults.", telemetry.Labels{"op": "write"})
	m.readFaults = reg.Counter("spill_io_faults_total", "Injected spill IO faults.", telemetry.Labels{"op": "read"})
	m.budgetRefusals = reg.Counter("spill_budget_refusals_total", "Writes refused by the disk byte budget.", nil)
	m.liveRuns = reg.Gauge("spill_live_runs", "Run files currently on disk.", nil)
	m.footprint = reg.Gauge("spill_disk_footprint_bytes", "Bytes currently charged to live spill runs.", nil)
	m.budget = reg.Gauge("spill_disk_budget_bytes", "Configured spill disk budget (0 = uncapped).", nil)
}
