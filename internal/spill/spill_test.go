package spill

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"knlmlm/internal/telemetry"
)

// testSeed returns a deterministic default seed, overridable via
// SPILL_TEST_SEED for reproducing a logged failure.
func testSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260805)
	if s := os.Getenv("SPILL_TEST_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SPILL_TEST_SEED %q: %v", s, err)
		}
		seed = v
	}
	return seed
}

func mustStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	cfg.Dir = t.TempDir()
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func writeRun(t *testing.T, s *Store, id int, keys []int64) {
	t.Helper()
	w, err := s.CreateRun(id)
	if err != nil {
		t.Fatalf("CreateRun(%d): %v", id, err)
	}
	if err := w.Append(keys); err != nil {
		t.Fatalf("Append(%d): %v", id, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close(%d): %v", id, err)
	}
}

func readRun(t *testing.T, s *Store, id, blockElems int) []int64 {
	t.Helper()
	r, err := s.OpenRun(id)
	if err != nil {
		t.Fatalf("OpenRun(%d): %v", id, err)
	}
	defer r.Close()
	var out []int64
	buf := make([]int64, blockElems)
	for {
		n, err := r.Fill(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Fill(%d): %v", id, err)
		}
	}
}

func TestRoundtripOddBlockSizes(t *testing.T) {
	seed := testSeed(t)
	defer func() {
		if t.Failed() {
			t.Logf("seed=%d", seed)
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	// A tiny, non-multiple-of-8 IO buffer forces partial-key carry-over in
	// the reader's refill path.
	s := mustStore(t, Config{BufBytes: 37})
	for id := 0; id < 4; id++ {
		n := 1 + rng.Intn(500)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63() - rng.Int63()
		}
		writeRun(t, s, id, keys)
		for _, block := range []int{1, 3, 64, n + 7} {
			got := readRun(t, s, id, block)
			if len(got) != n {
				t.Fatalf("run %d block %d: got %d elems, want %d", id, block, len(got), n)
			}
			for i := range keys {
				if got[i] != keys[i] {
					t.Fatalf("run %d block %d: elem %d = %d, want %d", id, block, i, got[i], keys[i])
				}
			}
		}
		if e := s.RunElems(id); e != int64(n) {
			t.Fatalf("RunElems(%d) = %d, want %d", id, e, n)
		}
	}
}

func TestBudgetRefusalAndCredit(t *testing.T) {
	s := mustStore(t, Config{MaxBytes: 64 * 8})
	writeRun(t, s, 0, make([]int64, 64))
	w, err := s.CreateRun(1)
	if err != nil {
		t.Fatalf("CreateRun: %v", err)
	}
	err = w.Append([]int64{1})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("Append over budget: got %v, want BudgetError", err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close after failed append should report the error")
	}
	if got := s.FootprintBytes(); got != 64*8 {
		t.Fatalf("footprint after refused writer = %d, want %d", got, 64*8)
	}
	// Removing run 0 frees the budget; a fresh run now fits.
	s.RemoveRun(0)
	if got := s.FootprintBytes(); got != 0 {
		t.Fatalf("footprint after remove = %d, want 0", got)
	}
	writeRun(t, s, 2, make([]int64, 64))
	if st := s.Stats(); st.BudgetRefusals != 1 {
		t.Fatalf("BudgetRefusals = %d, want 1", st.BudgetRefusals)
	}
}

func TestCreateRunReplacesPrevious(t *testing.T) {
	s := mustStore(t, Config{MaxBytes: 100 * 8})
	writeRun(t, s, 0, make([]int64, 90))
	// A retried spill of the same run must reclaim the first attempt's
	// bytes or this second write would blow the budget.
	writeRun(t, s, 0, []int64{5, 6, 7})
	got := readRun(t, s, 0, 8)
	if len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Fatalf("replaced run contents = %v", got)
	}
	if s.LiveRuns() != 1 {
		t.Fatalf("LiveRuns = %d, want 1", s.LiveRuns())
	}
}

func TestCloseRemovesDirectory(t *testing.T) {
	parent := t.TempDir()
	s, err := NewStore(Config{Dir: parent})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	writeRun(t, s, 0, []int64{1, 2, 3})
	dir := s.Dir()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("store dir %s survived Close (stat err %v)", dir, err)
	}
	if _, err := s.CreateRun(9); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateRun after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// flakyIO fails the first write and first read of every run, like a
// transient device hiccup the caller's retry should absorb.
type flakyIO struct{ wrote, read map[int]bool }

func (f *flakyIO) FailWrite(run int) bool {
	if f.wrote[run] {
		return false
	}
	f.wrote[run] = true
	return true
}

func (f *flakyIO) FailRead(run int) bool {
	if f.read[run] {
		return false
	}
	f.read[run] = true
	return true
}

func TestInjectedFaultsAndRetry(t *testing.T) {
	fi := &flakyIO{wrote: map[int]bool{}, read: map[int]bool{}}
	s := mustStore(t, Config{Faults: fi})
	keys := []int64{3, 1, 4, 1, 5}

	w, err := s.CreateRun(0)
	if err != nil {
		t.Fatalf("CreateRun: %v", err)
	}
	err = w.Append(keys)
	var fe *IOFaultError
	if !errors.As(err, &fe) || fe.Op != "write" {
		t.Fatalf("first Append = %v, want write IOFaultError", err)
	}
	_ = w.Close()
	if got := s.FootprintBytes(); got != 0 {
		t.Fatalf("footprint after faulted writer = %d, want 0", got)
	}
	// Retry re-creates the run; the injector has already hit it once.
	writeRun(t, s, 0, keys)

	r, err := s.OpenRun(0)
	if err != nil {
		t.Fatalf("OpenRun: %v", err)
	}
	defer r.Close()
	buf := make([]int64, 2)
	if _, err := r.Fill(buf); !errors.As(err, &fe) || fe.Op != "read" {
		t.Fatalf("first Fill = %v, want read IOFaultError", err)
	}
	// A faulted Fill consumes nothing: the retry streams the full run.
	var out []int64
	for {
		n, err := r.Fill(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Fill retry: %v", err)
		}
	}
	if len(out) != len(keys) {
		t.Fatalf("got %d elems after fault retry, want %d", len(out), len(keys))
	}
	for i := range keys {
		if out[i] != keys[i] {
			t.Fatalf("elem %d = %d, want %d", i, out[i], keys[i])
		}
	}
	st := s.Stats()
	if st.WriteFaults != 1 || st.ReadFaults != 1 {
		t.Fatalf("fault counters = %d/%d, want 1/1", st.WriteFaults, st.ReadFaults)
	}
}

func TestMetricsPublished(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := mustStore(t, Config{Registry: reg, MaxBytes: 1 << 20})
	writeRun(t, s, 0, make([]int64, 128))
	_ = readRun(t, s, 0, 32)
	st := s.Stats()
	if st.RunsCreated != 1 || st.BytesWritten != 128*8 || st.BytesRead != 128*8 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LiveBytes != 128*8 {
		t.Fatalf("LiveBytes = %d, want %d", st.LiveBytes, 128*8)
	}
}
