// Package stats provides the small statistical toolkit used by the
// benchmark harness: run summaries (mean, standard deviation, extrema) and
// labelled series for figure output.
//
// The paper reports each Table 1 cell as the mean and sample standard
// deviation of ten runs; Summary reproduces exactly that computation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a set of repeated measurements.
type Summary struct {
	N      int     // number of samples
	Mean   float64 // arithmetic mean
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs. An empty input yields a zero
// Summary; a single sample has StdDev 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String renders "mean ± stddev (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean, s.StdDev, s.N)
}

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// Series is a labelled sequence of points, the unit of figure output.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// MinY returns the point with the smallest Y value. It panics on an empty
// series: asking for the optimum of no data is a programming error.
func (s *Series) MinY() Point {
	if len(s.Points) == 0 {
		panic("stats: MinY of empty series")
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.Y < best.Y {
			best = p
		}
	}
	return best
}

// SortByX orders the points by ascending X; ties keep insertion order.
func (s *Series) SortByX() {
	sort.SliceStable(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// Speedup returns base/x — the convention of the paper's Figure 6, where
// bars show (GNU-flat time) / (variant time).
func Speedup(base, x float64) float64 {
	if x == 0 {
		return math.Inf(1)
	}
	return base / x
}

// GeoMean computes the geometric mean of positive values; it returns 0 for
// an empty input and panics on a non-positive sample.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// RelErr reports |a-b| / max(|a|,|b|), or 0 when both are 0. It is the
// metric used by the cross-validation tests between the analytic models and
// the discrete-event simulator.
func RelErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}
