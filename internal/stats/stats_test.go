package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.StdDev != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Errorf("Summarize single = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population sd 2, sample sd sqrt(32/7).
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Min > s.Mean || s.Mean > s.Max {
			return false
		}
		return s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeriesMinY(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 3)
	s.Add(3, 7)
	if got := s.MinY(); got.X != 2 || got.Y != 3 {
		t.Errorf("MinY = %+v", got)
	}
}

func TestSeriesMinYPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinY on empty series should panic")
		}
	}()
	(&Series{}).MinY()
}

func TestSeriesSortByX(t *testing.T) {
	var s Series
	s.Add(3, 1)
	s.Add(1, 2)
	s.Add(2, 3)
	s.SortByX()
	for i, want := range []float64{1, 2, 3} {
		if s.Points[i].X != want {
			t.Errorf("point %d X = %v, want %v", i, s.Points[i].X, want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10, 5); got != 2 {
		t.Errorf("Speedup(10,5) = %v", got)
	}
	if got := Speedup(1, 0); !math.IsInf(got, 1) {
		t.Errorf("Speedup(1,0) = %v, want +inf", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with non-positive value should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestRelErr(t *testing.T) {
	if RelErr(0, 0) != 0 {
		t.Error("RelErr(0,0) != 0")
	}
	if got := RelErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr(90,100) = %v", got)
	}
	if RelErr(5, 5) != 0 {
		t.Error("RelErr(x,x) != 0")
	}
}
