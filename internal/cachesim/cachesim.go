// Package cachesim is a trace-driven simulator of the MCDRAM memory-side
// cache in KNL's hardware cache mode: direct-mapped, 64-byte lines,
// write-back with write-allocate.
//
// It exists to validate the analytic streaming model in
// internal/cachemodel: paper-scale runs (billions of elements) cannot be
// simulated line by line, but the analytic model's hit-ratio predictions
// can be checked against this simulator on down-scaled configurations.
// It also demonstrates the direct-mapped thrashing pathology the paper
// cites as a weakness of hardware cache mode.
package cachesim

import (
	"fmt"

	"knlmlm/internal/units"
)

// Cache is a direct-mapped, write-back, write-allocate cache over a byte
// address space.
type Cache struct {
	lineSize int64
	numLines int64

	// tags[i] is the line-aligned address cached in set i, or -1 if empty.
	tags  []int64
	dirty []bool

	stats Stats
}

// Stats counts cache events. Traffic counters follow KNL's memory-side
// cache behaviour: a miss fetches a full line from DDR; a dirty eviction
// writes a full line back to DDR; hits touch only MCDRAM.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64

	DDRBytes    units.Bytes // line fills + writebacks
	MCDRAMBytes units.Bytes // all accesses touch the cache array
}

// HitRatio reports hits/accesses, or 0 before any access.
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// New creates a cache of the given capacity and line size. Capacity is
// rounded down to a whole number of lines; at least one line must fit.
func New(capacity units.Bytes, lineSize units.Bytes) *Cache {
	if lineSize <= 0 {
		panic(fmt.Sprintf("cachesim: line size %v must be positive", lineSize))
	}
	lines := int64(capacity) / int64(lineSize)
	if lines <= 0 {
		panic(fmt.Sprintf("cachesim: capacity %v below one line of %v", capacity, lineSize))
	}
	c := &Cache{
		lineSize: int64(lineSize),
		numLines: lines,
		tags:     make([]int64, lines),
		dirty:    make([]bool, lines),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// NumLines reports the number of cache sets (== lines: direct-mapped).
func (c *Cache) NumLines() int64 { return c.numLines }

// LineSize reports the line size in bytes.
func (c *Cache) LineSize() units.Bytes { return units.Bytes(c.lineSize) }

// Capacity reports the usable capacity.
func (c *Cache) Capacity() units.Bytes { return units.Bytes(c.numLines * c.lineSize) }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without flushing cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Access touches one byte address. write selects load vs store. It reports
// whether the access hit. Direct-mapped indexing: set = (addr/line) % lines.
func (c *Cache) Access(addr int64, write bool) bool {
	if addr < 0 {
		panic(fmt.Sprintf("cachesim: negative address %d", addr))
	}
	c.stats.Accesses++
	c.stats.MCDRAMBytes += units.Bytes(1)

	lineAddr := addr / c.lineSize * c.lineSize
	set := (addr / c.lineSize) % c.numLines

	if c.tags[set] == lineAddr {
		c.stats.Hits++
		if write {
			c.dirty[set] = true
		}
		return true
	}

	c.stats.Misses++
	if c.tags[set] != -1 {
		c.stats.Evictions++
		if c.dirty[set] {
			c.stats.Writebacks++
			c.stats.DDRBytes += units.Bytes(c.lineSize)
		}
	}
	// Line fill from DDR (write-allocate: stores also fill).
	c.stats.DDRBytes += units.Bytes(c.lineSize)
	c.tags[set] = lineAddr
	c.dirty[set] = write
	return false
}

// AccessRange streams sequentially through [base, base+n) with the given
// access width in bytes, issuing one Access per element. It models a
// thread streaming an array.
func (c *Cache) AccessRange(base, n int64, width int64, write bool) {
	if width <= 0 {
		panic(fmt.Sprintf("cachesim: width %d must be positive", width))
	}
	for off := int64(0); off < n; off += width {
		c.Access(base+off, write)
	}
}

// Flush writes back every dirty line and empties the cache, counting the
// writebacks. It models the implicit flush when a chunked phase's output
// must be durable in DDR before the next phase streams new data.
func (c *Cache) Flush() {
	for i := range c.tags {
		if c.tags[i] == -1 {
			continue
		}
		if c.dirty[i] {
			c.stats.Writebacks++
			c.stats.DDRBytes += units.Bytes(c.lineSize)
		}
		c.tags[i] = -1
		c.dirty[i] = false
	}
}
