package cachesim

import (
	"fmt"

	"knlmlm/internal/units"
)

// AssocCache is an N-way set-associative, write-back, write-allocate cache
// with LRU replacement. KNL's MCDRAM cache is direct-mapped (Cache ==
// AssocCache with one way); this variant exists to *quantify* how much of
// cache mode's trouble is the direct mapping — the paper names thrashing
// as "a common problem with direct-mapped caches", and the ablation
// benchmarks compare hit ratios across associativities on the same access
// streams.
type AssocCache struct {
	lineSize int64
	numSets  int64
	ways     int

	// tags[set*ways+way] holds the line address or -1; lru holds a
	// per-entry stamp, larger = more recently used.
	tags  []int64
	dirty []bool
	lru   []uint64
	clock uint64

	stats Stats
}

// NewAssoc creates a set-associative cache. Capacity rounds down to whole
// sets; at least one set must fit.
func NewAssoc(capacity, lineSize units.Bytes, ways int) *AssocCache {
	if lineSize <= 0 {
		panic(fmt.Sprintf("cachesim: line size %v must be positive", lineSize))
	}
	if ways < 1 {
		panic(fmt.Sprintf("cachesim: associativity %d must be at least 1", ways))
	}
	lines := int64(capacity) / int64(lineSize)
	sets := lines / int64(ways)
	if sets <= 0 {
		panic(fmt.Sprintf("cachesim: capacity %v below one %d-way set of %v lines", capacity, ways, lineSize))
	}
	c := &AssocCache{
		lineSize: int64(lineSize),
		numSets:  sets,
		ways:     ways,
		tags:     make([]int64, sets*int64(ways)),
		dirty:    make([]bool, sets*int64(ways)),
		lru:      make([]uint64, sets*int64(ways)),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// Ways reports the associativity.
func (c *AssocCache) Ways() int { return c.ways }

// Capacity reports the usable capacity.
func (c *AssocCache) Capacity() units.Bytes {
	return units.Bytes(c.numSets * int64(c.ways) * c.lineSize)
}

// Stats returns a copy of the event counters.
func (c *AssocCache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without flushing contents.
func (c *AssocCache) ResetStats() { c.stats = Stats{} }

// Access touches one byte address; write selects load vs store. It reports
// whether the access hit.
func (c *AssocCache) Access(addr int64, write bool) bool {
	if addr < 0 {
		panic(fmt.Sprintf("cachesim: negative address %d", addr))
	}
	c.stats.Accesses++
	c.stats.MCDRAMBytes += units.Bytes(1)
	c.clock++

	lineAddr := addr / c.lineSize * c.lineSize
	set := (addr / c.lineSize) % c.numSets
	base := set * int64(c.ways)

	// Hit?
	for w := 0; w < c.ways; w++ {
		i := base + int64(w)
		if c.tags[i] == lineAddr {
			c.stats.Hits++
			c.lru[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return true
		}
	}

	// Miss: pick the LRU victim (empty entries have stamp 0, so they are
	// chosen first).
	c.stats.Misses++
	victim := base
	for w := 1; w < c.ways; w++ {
		if c.lru[base+int64(w)] < c.lru[victim] {
			victim = base + int64(w)
		}
	}
	if c.tags[victim] != -1 {
		c.stats.Evictions++
		if c.dirty[victim] {
			c.stats.Writebacks++
			c.stats.DDRBytes += units.Bytes(c.lineSize)
		}
	}
	c.stats.DDRBytes += units.Bytes(c.lineSize)
	c.tags[victim] = lineAddr
	c.dirty[victim] = write
	c.lru[victim] = c.clock
	return false
}

// AccessRange streams sequentially as in Cache.AccessRange.
func (c *AssocCache) AccessRange(base, n int64, width int64, write bool) {
	if width <= 0 {
		panic(fmt.Sprintf("cachesim: width %d must be positive", width))
	}
	for off := int64(0); off < n; off += width {
		c.Access(base+off, write)
	}
}

// ConflictProbe measures the direct-mapped pathology: two interleaved
// streams whose bases collide modulo the cache size. It returns the hit
// ratios of a direct-mapped cache and a `ways`-way cache of equal capacity
// on the identical trace — the quantified version of the paper's
// "thrashing is a common problem with direct-mapped caches".
func ConflictProbe(capacity, lineSize units.Bytes, ways int, streamBytes int64) (direct, assoc float64) {
	dm := New(capacity, lineSize)
	sa := NewAssoc(capacity, lineSize, ways)
	// Stream A at 0, stream B exactly one cache-capacity away: every line
	// pair collides in the direct-mapped cache.
	run := func(access func(int64, bool) bool) float64 {
		// Two passes: the first warms, the second measures reuse.
		for pass := 0; pass < 2; pass++ {
			for off := int64(0); off < streamBytes; off += int64(lineSize) {
				access(off, false)
				access(int64(capacity)+off, false)
			}
		}
		return 0 // placeholder; stats fetched by caller
	}
	run(dm.Access)
	run(sa.Access)
	return dm.Stats().HitRatio(), sa.Stats().HitRatio()
}
