package cachesim

import (
	"testing"

	"knlmlm/internal/units"
)

func TestNewAssocGeometry(t *testing.T) {
	c := NewAssoc(1024, 64, 4) // 16 lines, 4 sets of 4 ways
	if c.Ways() != 4 || c.Capacity() != 1024 {
		t.Errorf("ways=%d capacity=%v", c.Ways(), c.Capacity())
	}
}

func TestNewAssocRejectsBadShape(t *testing.T) {
	cases := []struct {
		capacity, line units.Bytes
		ways           int
	}{
		{1024, 64, 0},
		{1024, 0, 2},
		{64, 64, 2}, // one line cannot form a 2-way set
	}
	for i, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			NewAssoc(tc.capacity, tc.line, tc.ways)
		}()
	}
}

func TestOneWayAssocMatchesDirectMapped(t *testing.T) {
	// A 1-way associative cache IS direct-mapped: identical stats on an
	// identical trace.
	dm := New(1024, 64)
	sa := NewAssoc(1024, 64, 1)
	addrs := []int64{0, 64, 1024, 0, 2048, 64, 128, 1024 + 64, 0}
	for _, a := range addrs {
		dm.Access(a, a%128 == 0)
		sa.Access(a, a%128 == 0)
	}
	if dm.Stats() != sa.Stats() {
		t.Errorf("direct %+v != 1-way %+v", dm.Stats(), sa.Stats())
	}
}

func TestAssocLRUReplacement(t *testing.T) {
	// 1 set, 2 ways, lines at 0, 64, 128 all map to set 0.
	c := NewAssoc(128, 64, 2)
	c.Access(0, false)   // miss, resident {0}
	c.Access(64, false)  // miss, resident {0,64}
	c.Access(0, false)   // hit (refreshes 0)
	c.Access(128, false) // miss, evicts LRU = 64
	if !c.Access(0, false) {
		t.Error("line 0 should have survived (was MRU)")
	}
	if c.Access(64, false) {
		t.Error("line 64 should have been the LRU victim")
	}
}

func TestAssocWritebackAccounting(t *testing.T) {
	c := NewAssoc(128, 64, 2)
	c.Access(0, true)    // dirty
	c.Access(64, false)  // clean
	c.Access(128, false) // evicts dirty 0 -> writeback
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.Writebacks)
	}
	if s.DDRBytes != units.Bytes(4*64) { // 3 fills + 1 writeback
		t.Errorf("DDR bytes = %v, want 256", s.DDRBytes)
	}
}

// The headline ablation: on a conflict-heavy two-stream trace, the
// direct-mapped cache thrashes to ~0 temporal reuse while a modest
// associativity retains it — the paper's stated weakness of cache mode.
func TestConflictProbeQuantifiesThrashing(t *testing.T) {
	direct, assoc := ConflictProbe(64*64, 64, 4, 32*64)
	if direct > 0.05 {
		t.Errorf("direct-mapped conflict hit ratio = %v, want ~0 (thrash)", direct)
	}
	if assoc < 0.45 {
		t.Errorf("4-way conflict hit ratio = %v, want ~0.5+", assoc)
	}
}

func TestAssocAccessRangeAndCounters(t *testing.T) {
	c := NewAssoc(64*64, 64, 8)
	c.AccessRange(0, 64*64, 8, false)
	c.ResetStats()
	c.AccessRange(0, 64*64, 8, false)
	if hr := c.Stats().HitRatio(); hr != 1.0 {
		t.Errorf("re-read of fitting data = %v, want 1.0", hr)
	}
	s := c.Stats()
	if s.Hits+s.Misses != s.Accesses {
		t.Error("counter identity broken")
	}
}

func TestAssocNegativeAddressPanics(t *testing.T) {
	c := NewAssoc(1024, 64, 2)
	defer func() {
		if recover() == nil {
			t.Error("negative address should panic")
		}
	}()
	c.Access(-5, false)
}

func TestAssocBadWidthPanics(t *testing.T) {
	c := NewAssoc(1024, 64, 2)
	defer func() {
		if recover() == nil {
			t.Error("zero width should panic")
		}
	}()
	c.AccessRange(0, 64, 0, false)
}
