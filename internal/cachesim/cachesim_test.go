package cachesim

import (
	"testing"
	"testing/quick"

	"knlmlm/internal/units"
)

func TestNewRejectsBadGeometry(t *testing.T) {
	for _, tc := range []struct{ capacity, line units.Bytes }{
		{0, 64}, {63, 64}, {128, 0}, {128, -64},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v, %v) should panic", tc.capacity, tc.line)
				}
			}()
			New(tc.capacity, tc.line)
		}()
	}
}

func TestGeometry(t *testing.T) {
	c := New(1000, 64) // rounds down to 15 lines
	if c.NumLines() != 15 || c.Capacity() != 15*64 || c.LineSize() != 64 {
		t.Errorf("lines=%d capacity=%v line=%v", c.NumLines(), c.Capacity(), c.LineSize())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(1024, 64)
	if c.Access(0, false) {
		t.Error("first access should miss")
	}
	if !c.Access(32, false) {
		t.Error("same-line access should hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Accesses != 2 {
		t.Errorf("stats = %+v", s)
	}
	// Cold miss fetched one line from DDR; no writeback yet.
	if s.DDRBytes != 64 {
		t.Errorf("DDR bytes = %v, want 64", s.DDRBytes)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(2*64, 64) // 2 lines: addresses 0 and 128 map to set 0
	c.Access(0, false)
	c.Access(128, false) // evicts line 0
	if c.Access(0, false) {
		t.Error("conflicting line should have been evicted")
	}
	if c.Stats().Evictions != 2 {
		t.Errorf("evictions = %d, want 2", c.Stats().Evictions)
	}
}

func TestWritebackOnlyForDirtyLines(t *testing.T) {
	c := New(2*64, 64)
	c.Access(0, true)    // dirty
	c.Access(128, false) // evicts dirty line -> writeback
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.Writebacks)
	}
	// 2 line fills + 1 writeback = 3 lines of DDR traffic.
	if s.DDRBytes != 3*64 {
		t.Errorf("DDR bytes = %v, want 192", s.DDRBytes)
	}
	c.Access(256, false) // evicts clean line 128 -> no writeback
	if c.Stats().Writebacks != 1 {
		t.Errorf("clean eviction caused writeback")
	}
}

func TestStreamingHitRatio(t *testing.T) {
	// Sequential 8-byte accesses over 64-byte lines: 1 miss + 7 hits per
	// line => hit ratio 7/8 exactly, for data far exceeding the cache.
	c := New(64*64, 64)
	c.AccessRange(0, 64*1024, 8, false)
	hr := c.Stats().HitRatio()
	if !units.AlmostEqual(hr, 7.0/8.0, 1e-12) {
		t.Errorf("hit ratio = %v, want 0.875", hr)
	}
}

func TestRereadWithinCapacityHits(t *testing.T) {
	// Second pass over data that fits entirely: all hits.
	c := New(1024, 64)
	c.AccessRange(0, 1024, 8, false)
	c.ResetStats()
	c.AccessRange(0, 1024, 8, false)
	if hr := c.Stats().HitRatio(); hr != 1.0 {
		t.Errorf("re-read hit ratio = %v, want 1.0", hr)
	}
}

func TestThrashingRereadBeyondCapacity(t *testing.T) {
	// Second pass over data exactly 2x capacity: direct-mapped streaming
	// evicts every line before reuse, so the re-read misses on every line.
	c := New(1024, 64)
	c.AccessRange(0, 2048, 8, false)
	c.ResetStats()
	c.AccessRange(0, 2048, 8, false)
	hr := c.Stats().HitRatio()
	if !units.AlmostEqual(hr, 7.0/8.0, 1e-12) {
		// Only the spatial hits within each line remain; no temporal reuse.
		t.Errorf("thrashed hit ratio = %v, want 0.875 (spatial only)", hr)
	}
	if c.Stats().Misses == 0 {
		t.Error("expected line misses during thrashed re-read")
	}
}

func TestFlushWritesBackDirtyLines(t *testing.T) {
	c := New(4*64, 64)
	c.Access(0, true)
	c.Access(64, false)
	c.Access(128, true)
	before := c.Stats().DDRBytes
	c.Flush()
	s := c.Stats()
	if s.Writebacks != 2 {
		t.Errorf("flush writebacks = %d, want 2", s.Writebacks)
	}
	if s.DDRBytes != before+2*64 {
		t.Errorf("flush DDR bytes = %v", s.DDRBytes-before)
	}
	// After flush everything misses again.
	if c.Access(0, false) {
		t.Error("access after flush should miss")
	}
}

func TestNegativeAddressPanics(t *testing.T) {
	c := New(1024, 64)
	defer func() {
		if recover() == nil {
			t.Error("negative address should panic")
		}
	}()
	c.Access(-1, false)
}

func TestAccessRangeBadWidthPanics(t *testing.T) {
	c := New(1024, 64)
	defer func() {
		if recover() == nil {
			t.Error("zero width should panic")
		}
	}()
	c.AccessRange(0, 64, 0, false)
}

// Property: hits + misses == accesses, and DDR traffic is a whole number of
// lines bounded by (misses + writebacks) * lineSize.
func TestCounterConsistency(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := New(32*64, 64)
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(int64(a), w)
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			return false
		}
		if s.Writebacks > s.Evictions+0 { // writebacks only happen at evictions (no flush here)
			return false
		}
		want := units.Bytes((s.Misses + s.Writebacks) * 64)
		return s.DDRBytes == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHitRatioEmpty(t *testing.T) {
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty stats hit ratio should be 0")
	}
}
