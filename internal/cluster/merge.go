package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"knlmlm/internal/psort"
	"knlmlm/internal/tune"
	"knlmlm/internal/units"
)

// The result merge is the cluster restatement of the single node's
// spill merge: partition downloads play the run files, the network plays
// the disk, and the merged stream goes straight to the caller without
// ever materializing. Partitions are range-disjoint and ordered, so the
// k-way merge over a sliding window of streams degenerates to ordered
// concatenation with prefetch — but the merge does not rely on that:
// within the window it merges by value (psort.MergeK /
// psort.ParallelMergeK over safe prefixes), so a partitioner bug would
// cost balance, never correctness.
//
// The window width — how many backend streams download concurrently —
// is provisioned by the same Equation 1-5 solve the spill tier uses for
// disk read-ahead (tune.SpillReadAhead), with the backends' polled EWMA
// copy rate as the per-stream source rate and their compute rate as the
// merge's consumption rate.
//
// Fault tolerance: a stream that dies mid-download (backend SIGKILL,
// severed connection, evicted remote result) is recovered by
// re-submitting that partition's retained keys to a surviving backend
// and skipping the elements already handed to the merge — sound because
// re-sorting the same multiset is deterministic, so the retried stream
// is byte-identical to the lost one.

// ErrResultConsumed mirrors the single node's consume-once contract: the
// merged stream releases each partition's retained keys as it completes,
// so it can only be taken once.
var ErrResultConsumed = errors.New("cluster: result already consumed")

// ErrNotReady reports a result request for a job that is not Done.
var ErrNotReady = errors.New("cluster: job not done")

func defaultMergeThreads() int {
	n := runtime.GOMAXPROCS(0)
	if n < 3 {
		n = 3
	}
	return n
}

// readAheadWidth provisions the merge's concurrent-download window from
// the fleet's polled rates. No live capacity data (cold start, full
// outage) falls back to 2: one stream draining, one prefetching.
func (c *Coordinator) readAheadWidth(parts, n int) int {
	var copyBps, compBps float64
	live := 0
	for _, b := range c.backends {
		if up, cap := b.snapshot(); up && cap.EWMACopyBps > 0 && cap.EWMACompBps > 0 {
			copyBps += cap.EWMACopyBps
			compBps += cap.EWMACompBps
			live++
		}
	}
	w := 2
	if live > 0 {
		w = tune.SpillReadAhead(
			units.BytesPerSec(copyBps/float64(live)),
			units.BytesPerSec(compBps/float64(live)),
			c.cfg.MergeThreads,
			units.Bytes(int64(n)*8))
		if w < 2 {
			w = 2
		}
	}
	if w > parts {
		w = parts
	}
	return w
}

// partStream is the merge-side handle on one partition's download: a
// channel of decoded batches fed by a fill goroutine, with the terminal
// error (nil on success) readable after the channel closes.
type partStream struct {
	p   *part
	ch  chan []int64
	err error
}

// StreamResult merges the job's sorted partitions into emit, in order,
// batch by batch. It is consume-once; the emitted element count is
// returned. Cancelling ctx aborts the downloads and the merge.
func (j *Job) StreamResult(ctx context.Context, emit func([]int64) error) (int64, error) {
	j.mu.Lock()
	switch {
	case j.state == stateRunning:
		j.mu.Unlock()
		return 0, ErrNotReady
	case j.state == stateFailed:
		err := j.err
		j.mu.Unlock()
		return 0, err
	case j.consumed:
		j.mu.Unlock()
		return 0, ErrResultConsumed
	}
	j.consumed = true
	parts := j.parts
	j.mu.Unlock()

	live := make([]*part, 0, len(parts))
	for _, p := range parts {
		if len(p.keys) > 0 {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return 0, nil
	}

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	width := j.coord.readAheadWidth(len(live), j.n)
	streams := make([]*partStream, len(live))
	fillDone := make([]chan struct{}, len(live))
	for i, p := range live {
		streams[i] = &partStream{p: p, ch: make(chan []int64, 1)}
		fillDone[i] = make(chan struct{})
	}
	for i := range streams {
		go func(i int) {
			defer close(fillDone[i])
			s := streams[i]
			defer close(s.ch)
			// Ordered sliding window: stream i starts once stream i-width
			// has fully delivered, so at most `width` downloads are in
			// flight and they are always the next ranges the merge needs.
			if i >= width {
				select {
				case <-fillDone[i-width]:
				case <-sctx.Done():
					s.err = sctx.Err()
					return
				}
			}
			s.err = j.coord.fillPart(sctx, j, s)
		}(i)
	}

	n, err := j.mergeStreams(sctx, streams, width, emit)
	if err != nil {
		cancel()
		// Drain fills so their goroutines exit before we return.
		for _, ch := range fillDone {
			<-ch
		}
		return n, err
	}
	j.release()
	return n, nil
}

// mergeStreams runs the windowed merge over the partition streams.
func (j *Job) mergeStreams(ctx context.Context, streams []*partStream, width int, emit func([]int64) error) (int64, error) {
	m := j.coord.m
	heads := make([][]int64, len(streams))
	exhausted := make([]bool, len(streams))
	var delivered int64
	var stall time.Duration
	defer func() { m.mergeStall.Add(stall.Seconds()) }()

	base := 0
	for base < len(streams) {
		hi := base + width
		if hi > len(streams) {
			hi = len(streams)
		}
		// Fill the window: every live stream must have a buffered batch
		// before a safe emission bound exists. Time blocked here with
		// nothing mergeable is merge stall — the tier's pipeline bubble.
		liveHeads := 0
		for i := base; i < hi; i++ {
			if exhausted[i] || len(heads[i]) > 0 {
				if !exhausted[i] {
					liveHeads++
				}
				continue
			}
			t0 := time.Now()
			batch, ok := <-streams[i].ch
			stall += time.Since(t0)
			if !ok {
				if err := streams[i].err; err != nil {
					return delivered, err
				}
				exhausted[i] = true
				continue
			}
			heads[i] = batch
			liveHeads++
		}
		if liveHeads == 0 {
			base = hi
			continue
		}
		// Safe bound: the minimum over live window streams of the last
		// buffered element. Every stream's future elements are >= its last
		// buffered one, so everything <= bound is final.
		var bound int64
		first := true
		for i := base; i < hi; i++ {
			if len(heads[i]) == 0 {
				continue
			}
			if last := heads[i][len(heads[i])-1]; first || last < bound {
				bound, first = last, false
			}
		}
		prefixes := make([][]int64, 0, hi-base)
		total := 0
		for i := base; i < hi; i++ {
			h := heads[i]
			if len(h) == 0 {
				continue
			}
			cut := sort.Search(len(h), func(k int) bool { return h[k] > bound })
			if cut == 0 {
				continue
			}
			prefixes = append(prefixes, h[:cut])
			heads[i] = h[cut:]
			total += cut
		}
		if total == 0 {
			// Cannot happen: the bound-defining stream always contributes
			// its whole head. Guard against looping forever anyway.
			return delivered, fmt.Errorf("cluster: merge made no progress at base %d", base)
		}
		var block []int64
		if len(prefixes) == 1 {
			block = prefixes[0]
		} else {
			block = make([]int64, total)
			if total > 64<<10 && j.coord.cfg.MergeThreads > 1 {
				psort.ParallelMergeK(block, prefixes, j.coord.cfg.MergeThreads)
			} else {
				psort.MergeK(block, prefixes...)
			}
		}
		if err := emit(block); err != nil {
			return delivered, err
		}
		delivered += int64(total)
		m.mergeBytes.Add(int64(total) * 8)
		// Advance past fully-drained exhausted streams at the window head.
		for base < len(streams) && exhausted[base] && len(heads[base]) == 0 {
			base++
		}
		if err := ctx.Err(); err != nil {
			return delivered, err
		}
	}
	if delivered != int64(totalLive(streams)) {
		return delivered, fmt.Errorf("cluster: merge delivered %d of %d elements", delivered, totalLive(streams))
	}
	return delivered, nil
}

func totalLive(streams []*partStream) int {
	n := 0
	for _, s := range streams {
		n += int(s.p.sentTotal())
	}
	return n
}

func (p *part) sentTotal() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// fillPart drives one partition's download to completion, re-running the
// partition on a surviving backend when its stream dies. Batches go to
// s.ch; on return the partition is delivered (nil) or failed (error).
func (c *Coordinator) fillPart(ctx context.Context, j *Job, s *partStream) error {
	p := s.p
	for {
		err := c.streamOnce(ctx, s)
		if err == nil {
			p.mu.Lock()
			p.state = partDelivered
			p.keys = nil // delivered in full; no retry can need them again
			p.mu.Unlock()
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var de *dialError
		if !errors.As(err, &de) {
			p.setState(partFailed)
			return err
		}
		p.mu.Lock()
		p.retries++
		from := p.backend.idx
		exhausted := p.retries > c.cfg.MaxRetries
		p.mu.Unlock()
		if exhausted {
			p.setState(partFailed)
			return fmt.Errorf("cluster: partition %d exhausted retries mid-stream: %w", p.idx, err)
		}
		c.m.retries.Add(1)
		next := c.pickBackend(from)
		c.logger.Warn("cluster partition stream failover", "job", j.id, "part", p.idx,
			"from", from, "to", next.idx, "sent", p.sentTotal(), "err", err)
		p.mu.Lock()
		p.backend = next
		p.remoteID = ""
		p.mu.Unlock()
		// Re-run the lost partition remotely (submitPart has its own
		// backpressure ladder); the next streamOnce skips what was sent.
		if serr := c.submitPart(ctx, j, p); serr != nil {
			p.setState(partFailed)
			return serr
		}
	}
}

// streamOnce opens the partition's current remote result and forwards
// decoded batches, skipping the prefix a previous attempt already
// delivered. Transport-level failures come back as *dialError
// (retryable); anything structural (a remote result of the wrong size)
// is terminal.
func (c *Coordinator) streamOnce(ctx context.Context, s *partStream) error {
	p := s.p
	p.mu.Lock()
	b, id, skip, want := p.backend, p.remoteID, p.sent, int64(len(p.keys))
	p.state = partStreaming
	p.mu.Unlock()
	if id == "" {
		return &dialError{backend: b.idx, err: errors.New("partition has no remote job")}
	}
	fr, closer, err := b.openStream(ctx, id)
	if err != nil {
		return err
	}
	defer closer.Close()
	if fr.Total() != want {
		return fmt.Errorf("cluster: backend %d returned %d elements for a %d-element partition", b.idx, fr.Total(), want)
	}
	block := c.cfg.MergeBlockElems
	var scratch []int64
	for skip > 0 {
		if scratch == nil {
			scratch = make([]int64, block)
		}
		n := int64(len(scratch))
		if n > skip {
			n = skip
		}
		got, err := fr.ReadBatch(scratch[:n])
		if err != nil {
			b.markDown()
			return &dialError{backend: b.idx, err: err}
		}
		skip -= int64(got)
	}
	for {
		buf := make([]int64, block)
		n, err := fr.ReadBatch(buf)
		if n > 0 {
			select {
			case s.ch <- buf[:n]:
				p.mu.Lock()
				p.sent += int64(n)
				p.mu.Unlock()
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err == io.EOF {
			if ferr := fr.Finish(); ferr != nil {
				b.markDown()
				return &dialError{backend: b.idx, err: ferr}
			}
			return nil
		}
		if err != nil {
			b.markDown()
			return &dialError{backend: b.idx, err: err}
		}
	}
}
