package cluster

import "testing"

func healthyCap() capacity {
	return capacity{
		HeadroomBytes: 4 << 20,
		QueueDepth:    0,
		BrownoutLevel: 0,
		EWMACopyBps:   4.8e9,
		EWMACompBps:   6.78e9,
		Threads:       8,
	}
}

func TestBackendWeightDegradesWithBrownout(t *testing.T) {
	base := backendWeight(true, healthyCap())
	if base <= 0 {
		t.Fatal("healthy backend weighs zero")
	}
	prev := base
	for level := 1; level <= 3; level++ {
		c := healthyCap()
		c.BrownoutLevel = level
		w := backendWeight(true, c)
		if w >= prev {
			t.Fatalf("brownout level %d weight %.3g not below level %d weight %.3g", level, w, level-1, prev)
		}
		prev = w
	}
	// Level 2 should take roughly a third the share of a healthy node:
	// weight scales by 1/(1+level).
	c := healthyCap()
	c.BrownoutLevel = 2
	if ratio := backendWeight(true, c) / base; ratio < 0.25 || ratio > 0.45 {
		t.Fatalf("brownout-2 share ratio %.2f, want ~1/3", ratio)
	}
}

func TestBackendWeightDegradesWithQueueDepth(t *testing.T) {
	base := backendWeight(true, healthyCap())
	c := healthyCap()
	c.QueueDepth = 8
	if w := backendWeight(true, c); w >= base {
		t.Fatalf("deep queue weight %.3g not below idle weight %.3g", w, base)
	}
}

func TestBackendWeightTracksMeasuredRates(t *testing.T) {
	slow := healthyCap()
	slow.EWMACopyBps /= 4
	slow.EWMACompBps /= 4
	if ws := backendWeight(true, slow); ws >= backendWeight(true, healthyCap()) {
		t.Fatal("a 4x-slower node did not weigh less than a healthy one")
	}
}

func TestBackendWeightDownAndHeadroom(t *testing.T) {
	if backendWeight(false, healthyCap()) != 0 {
		t.Fatal("down backend must weigh zero")
	}
	c := healthyCap()
	c.HeadroomBytes = 0
	full := backendWeight(true, c)
	if full <= 0 {
		t.Fatal("full backend must keep a nonzero trickle weight")
	}
	if full >= backendWeight(true, healthyCap())/5 {
		t.Fatalf("zero headroom barely dented the weight: %.3g", full)
	}
}

func TestNodeRateZeroWithoutRates(t *testing.T) {
	if r := nodeRate(capacity{Threads: 8}); r != 0 {
		t.Fatalf("nodeRate with no measured rates = %.3g, want 0", r)
	}
}
