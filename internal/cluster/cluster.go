// Package cluster is the distributed tier of the sort service: a
// coordinator that fronts N mlmserve backends and presents the same
// submit/status/result API a single node does, at the aggregate
// bandwidth of the fleet.
//
// A job moves through three phases:
//
//   - Partition: the coordinator samples the keys, reads splitters off
//     the sample's weighted quantiles, and scatters the keys into
//     disjoint ranges sized to each backend's polled capacity (see
//     router.go — weights come from the paper's Eq. 1-5 model solved
//     with each node's own EWMA rates, degraded by brownout and queue
//     depth).
//   - Scatter: each partition is uploaded as one binary wire-format job
//     (Expect: 100-continue, X-Deadline-Ms) and sorted remotely; the
//     coordinator holds the wait=1 response until the remote sort is
//     terminal.
//   - Merge: the result download streams the per-partition wire
//     downloads through a windowed k-way merge straight onto the
//     client's socket — the cluster restatement of the single node's
//     disk -> merge -> socket spill path, with backends playing disk.
//
// Fault tolerance is per partition, not per job: every partition is a
// small state machine (assigned -> sorted -> streaming -> delivered)
// whose keys the coordinator retains until delivery. A backend that dies
// mid-sort or mid-stream fails only the partitions it held; each is
// re-submitted to a surviving backend and, when it was already mid-
// stream, the retry skips the elements the client already has — sound
// because re-sorting the same keys is deterministic. Backpressure (429,
// shed) is handled separately with bounded waits: an overloaded backend
// is alive, and failing over a whole partition because of a full queue
// would amplify the overload.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"knlmlm/internal/telemetry"
)

// ConnFaults injects connection-level failures for chaos testing;
// *fault.Injector satisfies it. FailDial is consulted before each
// request to a backend, FailStream before each read of a response
// stream.
type ConnFaults interface {
	FailDial(backend int) bool
	FailStream(backend int) bool
}

// Config describes a Coordinator.
type Config struct {
	// Backends are the mlmserve base URLs (http://host:port). Required.
	Backends []string
	// Registry receives the cluster_* metric families; nil selects a
	// private registry.
	Registry *telemetry.Registry
	// SampleRate is the fraction of a job's keys sampled for splitter
	// selection. Zero selects 0.01; the sample is floored at 8 keys per
	// partition regardless.
	SampleRate float64
	// PartsPerBackend is how many range partitions each backend receives
	// per job. More partitions smooth the retry granularity (a dead
	// backend loses smaller pieces) at the cost of per-partition HTTP
	// overhead. Zero selects 2.
	PartsPerBackend int
	// MergeThreads is the thread budget the result merge provisions its
	// read-ahead and merge parallelism from. Zero selects GOMAXPROCS
	// (floor 3, like the scheduler).
	MergeThreads int
	// MergeBlockElems is the merge emission granularity. Zero selects
	// 32768 (256 KiB blocks, matching the wire frame default).
	MergeBlockElems int
	// MaxRetries bounds failure-driven re-runs per partition (backend
	// death, severed streams). Zero selects 4.
	MaxRetries int
	// MaxBackoffs bounds backpressure waits per partition submit (429,
	// shed). Zero selects 32 — backpressure resolves with time, so the
	// budget is generous where the failure budget is tight.
	MaxBackoffs int
	// PollInterval is the capacity poll cadence. Zero selects 500ms.
	PollInterval time.Duration
	// RetainJobs bounds terminal jobs kept for status lookup. Zero
	// selects 64.
	RetainJobs int
	// SkewLimit triggers a one-shot splitter resample when the worst
	// partition exceeds this multiple of its weighted target. Zero
	// selects 2.5.
	SkewLimit float64
	// ConnFaults, when non-nil, injects dial/stream failures (chaos).
	ConnFaults ConnFaults
	// Logger, when non-nil, receives job lifecycle events.
	Logger *slog.Logger
	// Client overrides the HTTP client used for backend traffic (tests).
	// Nil builds one with Expect-Continue support and no overall timeout.
	Client *http.Client
	// Seed makes splitter sampling deterministic across runs. Zero is a
	// valid seed.
	Seed int64
}

// Coordinator routes sort jobs across the backend fleet.
type Coordinator struct {
	cfg        Config
	reg        *telemetry.Registry
	m          *metrics
	backends   []*backend
	client     *http.Client
	pollClient *http.Client
	logger     *slog.Logger

	seq      atomic.Int64
	probeSeq atomic.Int64
	draining atomic.Bool

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string

	stop     chan struct{}
	stopOnce sync.Once
	pollWG   sync.WaitGroup
}

// New builds a Coordinator and starts its capacity poller. Close stops
// the poller; in-flight jobs are owned by their submitters' contexts.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: at least one backend is required")
	}
	if cfg.SampleRate <= 0 {
		cfg.SampleRate = 0.01
	}
	if cfg.PartsPerBackend <= 0 {
		cfg.PartsPerBackend = 2
	}
	if cfg.MergeThreads <= 0 {
		cfg.MergeThreads = defaultMergeThreads()
	}
	if cfg.MergeThreads < 3 {
		cfg.MergeThreads = 3
	}
	if cfg.MergeBlockElems <= 0 {
		cfg.MergeBlockElems = 32768
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 4
	}
	if cfg.MaxBackoffs <= 0 {
		cfg.MaxBackoffs = 32
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 64
	}
	if cfg.SkewLimit <= 0 {
		cfg.SkewLimit = 2.5
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.ExpectContinueTimeout = time.Second
		tr.MaxIdleConnsPerHost = 16
		client = &http.Client{Transport: tr}
	}
	c := &Coordinator{
		cfg:        cfg,
		reg:        reg,
		m:          newMetrics(reg, len(cfg.Backends)),
		client:     client,
		pollClient: &http.Client{Transport: client.Transport, Timeout: 2 * time.Second},
		logger:     cfg.Logger,
		jobs:       map[string]*Job{},
		stop:       make(chan struct{}),
	}
	if c.logger == nil {
		c.logger = slog.New(discardHandler{})
	}
	for i, base := range cfg.Backends {
		c.backends = append(c.backends, &backend{
			idx:         i,
			base:        base,
			client:      client,
			faults:      cfg.ConnFaults,
			bytesRouted: c.m.bytesRouted[i],
			upGauge:     c.m.backendUp[i],
		})
	}
	c.pollAll()
	c.pollWG.Add(1)
	go c.pollLoop()
	return c, nil
}

func (c *Coordinator) pollLoop() {
	defer c.pollWG.Done()
	t := time.NewTicker(c.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.pollAll()
		}
	}
}

// Close stops the capacity poller. It does not cancel in-flight jobs.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.pollWG.Wait()
}

// Registry exposes the coordinator's metric registry (for /metrics).
func (c *Coordinator) Registry() *telemetry.Registry { return c.reg }

// jobOptions are the per-job knobs forwarded to every partition submit.
type jobOptions struct {
	Priority     int
	DeadlineMS   int64
	Algorithm    string
	MegachunkLen int
}

// Job state names mirror the single-node wire form so clients see one
// vocabulary across tiers.
const (
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// partState is one partition's position in its lifecycle.
type partState int32

const (
	partAssigned partState = iota
	partSorted
	partStreaming
	partDelivered
	partFailed
)

func (s partState) String() string {
	switch s {
	case partAssigned:
		return "assigned"
	case partSorted:
		return "sorted"
	case partStreaming:
		return "streaming"
	case partDelivered:
		return "delivered"
	default:
		return "failed"
	}
}

// part is one range partition's state machine. Its keys are retained —
// and re-submittable — until the partition's bytes have been delivered
// into the merged result stream.
type part struct {
	idx  int
	keys []int64

	mu       sync.Mutex
	state    partState
	backend  *backend
	remoteID string
	retries  int
	sent     int64 // elements already delivered into the merge
}

func (p *part) setState(s partState) {
	p.mu.Lock()
	p.state = s
	p.mu.Unlock()
}

// Job is one cluster sort.
type Job struct {
	id    string
	coord *Coordinator
	n     int
	opts  jobOptions

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	state     string
	err       error
	parts     []*part
	skew      float64
	resampled bool
	consumed  bool
	enq       time.Time
	started   time.Time
	fin       time.Time
}

// ID, N, State, Err, Skew: status accessors.
func (j *Job) ID() string { return j.id }
func (j *Job) N() int     { return j.n }

func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Skew reports the job's measured partition skew and whether the
// splitter sample was retaken.
func (j *Job) Skew() (float64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.skew, j.resampled
}

// Times reports enqueue/start/finish instants (zero when not reached).
func (j *Job) Times() (enq, started, fin time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enq, j.started, j.fin
}

// Retries sums failure-driven re-runs across the job's partitions.
func (j *Job) Retries() int {
	j.mu.Lock()
	parts := j.parts
	j.mu.Unlock()
	total := 0
	for _, p := range parts {
		p.mu.Lock()
		total += p.retries
		p.mu.Unlock()
	}
	return total
}

// Wait blocks until the job is terminal or ctx is done.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel aborts the job: scatter and merge stop, and every submitted
// remote partition job is best-effort cancelled.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	parts := j.parts
	j.mu.Unlock()
	for _, p := range parts {
		p.mu.Lock()
		b, id := p.backend, p.remoteID
		p.mu.Unlock()
		if b != nil && id != "" {
			go b.cancelRemote(id)
		}
	}
}

// Submit accepts a cluster sort job and starts its partition/scatter
// pipeline asynchronously; the returned Job tracks it. The coordinator
// owns keys until the job is evicted from retention.
func (c *Coordinator) Submit(keys []int64, opts jobOptions) (*Job, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("cluster: keys must be non-empty")
	}
	if c.draining.Load() {
		return nil, errDraining
	}
	seq := c.seq.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:     fmt.Sprintf("c%08d", seq),
		coord:  c,
		n:      len(keys),
		opts:   opts,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		state:  stateRunning,
		enq:    time.Now(),
	}
	c.m.jobs.Add(1)
	c.retain(j)
	go c.run(j, keys, seq)
	return j, nil
}

var errDraining = errors.New("cluster: coordinator is draining")

// run executes the partition and scatter phases. The job turns Done when
// every partition is sorted on some backend; the merge happens at result
// download time, mirroring the single node's deferred spill merge.
func (c *Coordinator) run(j *Job, keys []int64, seq int64) {
	j.mu.Lock()
	j.started = time.Now()
	j.mu.Unlock()

	weights := c.weights()
	nparts := len(c.backends) * c.cfg.PartsPerBackend
	if nparts > len(keys) {
		nparts = len(keys)
	}
	// Partition p goes to backend p mod B, so each backend's share is
	// spread across the keyspace and its weight splits evenly over its
	// partitions.
	pw := make([]float64, nparts)
	for p := range pw {
		pw[p] = weights[p%len(c.backends)]
	}
	rng := rand.New(rand.NewSource(c.cfg.Seed ^ int64(uint64(seq)*0x9e3779b97f4a7c15)))
	pl := partition(keys, pw, c.cfg.SampleRate, c.cfg.SkewLimit, rng)
	c.m.skew.Observe(pl.skew)
	if pl.resampled {
		c.m.resamples.Add(1)
	}

	parts := make([]*part, 0, len(pl.parts))
	for i, pk := range pl.parts {
		parts = append(parts, &part{idx: i, keys: pk, backend: c.backends[i%len(c.backends)]})
	}
	c.m.partitions.Add(int64(len(parts)))
	j.mu.Lock()
	j.parts = parts
	j.skew = pl.skew
	j.resampled = pl.resampled
	j.mu.Unlock()

	var wg sync.WaitGroup
	errs := make([]error, len(parts))
	for i, p := range parts {
		if len(p.keys) == 0 {
			p.setState(partSorted)
			continue
		}
		wg.Add(1)
		go func(i int, p *part) {
			defer wg.Done()
			errs[i] = c.submitPart(j.ctx, j, p)
		}(i, p)
	}
	wg.Wait()

	var failed error
	for _, e := range errs {
		if e != nil {
			failed = e
			break
		}
	}
	j.mu.Lock()
	j.fin = time.Now()
	if failed != nil {
		j.state = stateFailed
		j.err = failed
	} else {
		j.state = stateDone
	}
	j.mu.Unlock()
	if failed != nil {
		c.m.jobsFailed.Add(1)
		c.logger.Warn("cluster job failed", "job", j.id, "err", failed)
	} else {
		c.logger.Info("cluster job sorted", "job", j.id, "n", j.n,
			"parts", len(parts), "skew", fmt.Sprintf("%.2f", pl.skew), "retries", j.Retries())
	}
	close(j.done)
}

// submitPart drives one partition to the sorted state: upload, remote
// sort, and on failure the bounded retry ladder — backpressure waits on
// the same backend, hard failures fail over to the best surviving one.
// ctx is the phase that owns the submit: the scatter context at job
// admission, the download context for a mid-stream re-run.
func (c *Coordinator) submitPart(ctx context.Context, j *Job, p *part) error {
	backoffs := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.mu.Lock()
		b := p.backend
		p.mu.Unlock()
		id, err := b.submitSorted(ctx, p.keys, j.opts)
		if err == nil {
			p.mu.Lock()
			p.remoteID = id
			p.state = partSorted
			p.mu.Unlock()
			return nil
		}
		var bp *backpressureError
		if errors.As(err, &bp) {
			backoffs++
			c.m.backoffs.Add(1)
			if backoffs > c.cfg.MaxBackoffs {
				return fmt.Errorf("cluster: partition %d exhausted backpressure budget: %w", p.idx, err)
			}
			select {
			case <-time.After(bp.retryAfter):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		p.mu.Lock()
		p.retries++
		exhausted := p.retries > c.cfg.MaxRetries
		p.mu.Unlock()
		if exhausted {
			p.setState(partFailed)
			return fmt.Errorf("cluster: partition %d exhausted retries: %w", p.idx, err)
		}
		c.m.retries.Add(1)
		next := c.pickBackend(b.idx)
		c.logger.Warn("cluster partition failover", "job", j.id, "part", p.idx,
			"from", b.idx, "to", next.idx, "err", err)
		p.mu.Lock()
		p.backend = next
		p.remoteID = ""
		p.mu.Unlock()
	}
}

// retain remembers the job for status lookup, evicting the oldest
// terminal jobs past the retention bound (their partition keys go with
// them).
func (c *Coordinator) retain(j *Job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	for len(c.order) > c.cfg.RetainJobs {
		id := c.order[0]
		old := c.jobs[id]
		if old != nil {
			select {
			case <-old.done:
			default:
				return // oldest still running; retention waits
			}
		}
		c.order = c.order[1:]
		delete(c.jobs, id)
		if old != nil {
			old.release()
		}
	}
}

// release drops a job's retained partition keys.
func (j *Job) release() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, p := range j.parts {
		p.mu.Lock()
		p.keys = nil
		p.mu.Unlock()
	}
}

// Lookup finds a job by ID.
func (c *Coordinator) Lookup(id string) (*Job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// Drain refuses new submissions and waits for in-flight jobs to turn
// terminal (or ctx to expire).
func (c *Coordinator) Drain(ctx context.Context) error {
	c.draining.Store(true)
	c.mu.Lock()
	jobs := make([]*Job, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	for _, j := range jobs {
		select {
		case <-j.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Draining reports whether Drain has been called.
func (c *Coordinator) Draining() bool { return c.draining.Load() }

// backendViews snapshots per-backend health for /healthz, in index
// order.
type backendView struct {
	Index    int      `json:"index"`
	Addr     string   `json:"addr"`
	Up       bool     `json:"up"`
	Weight   float64  `json:"weight"`
	Capacity capacity `json:"capacity"`
}

func (c *Coordinator) backendViews() []backendView {
	w := c.weights()
	var sum float64
	for _, x := range w {
		sum += x
	}
	out := make([]backendView, len(c.backends))
	for i, b := range c.backends {
		up, cap := b.snapshot()
		share := 0.0
		if sum > 0 {
			share = w[i] / sum
		}
		out[i] = backendView{Index: i, Addr: b.base, Up: up, Weight: share, Capacity: cap}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// discardHandler is a no-op slog handler (slog.DiscardHandler arrives in
// Go 1.24's stdlib as slog.DiscardHandler; this keeps the floor lower).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
