package cluster

import (
	"strconv"

	"knlmlm/internal/telemetry"
)

// metrics is the coordinator's cluster_* family: the observable record
// of how the tier routed, retried, and merged. The per-backend families
// are pre-instantiated per index so the hot paths never touch the
// registry's family lock.
type metrics struct {
	jobs       *telemetry.Counter
	jobsFailed *telemetry.Counter
	partitions *telemetry.Counter
	retries    *telemetry.Counter
	backoffs   *telemetry.Counter
	resamples  *telemetry.Counter
	skew       *telemetry.Histogram
	mergeBytes *telemetry.Counter
	// mergeStall accumulates seconds the merge spent blocked waiting for
	// a backend stream with nothing mergeable — the cluster analog of a
	// pipeline bubble, and the signal that read-ahead width or a backend
	// is the bottleneck.
	mergeStall *telemetry.Gauge

	bytesRouted []*telemetry.Counter
	backendUp   []*telemetry.Gauge
}

func newMetrics(reg *telemetry.Registry, backends int) *metrics {
	m := &metrics{
		jobs: reg.Counter("cluster_jobs_total",
			"Jobs accepted by the cluster coordinator.", nil),
		jobsFailed: reg.Counter("cluster_jobs_failed_total",
			"Coordinator jobs that exhausted partition retries and failed.", nil),
		partitions: reg.Counter("cluster_partitions_total",
			"Range partitions scattered to backends.", nil),
		retries: reg.Counter("cluster_partition_retries_total",
			"Partition re-runs after a backend failure (dial, stream, or remote error).", nil),
		backoffs: reg.Counter("cluster_partition_backoffs_total",
			"Partition submits delayed by backend backpressure (429).", nil),
		resamples: reg.Counter("cluster_partition_resamples_total",
			"Jobs whose splitter sample was retaken after exceeding the skew limit.", nil),
		skew: reg.Histogram("cluster_partition_skew",
			"Worst partition size over its weighted target per job (1.0 = balanced).",
			nil, []float64{1.05, 1.1, 1.25, 1.5, 2, 2.5, 4, 8}),
		mergeBytes: reg.Counter("cluster_merge_bytes_total",
			"Result bytes streamed through the coordinator merge.", nil),
		mergeStall: reg.Gauge("cluster_merge_stall_seconds_total",
			"Cumulative seconds the result merge spent stalled on backend streams.", nil),
	}
	for i := 0; i < backends; i++ {
		lbl := telemetry.Labels{"backend": strconv.Itoa(i)}
		m.bytesRouted = append(m.bytesRouted, reg.Counter("cluster_backend_bytes_routed_total",
			"Key bytes scattered to each backend.", lbl))
		m.backendUp = append(m.backendUp, reg.Gauge("cluster_backend_up",
			"Whether the backend answered its last capacity poll (1) or not (0).", lbl))
	}
	return m
}
