package cluster

import (
	"math/rand"
	"sort"
	"testing"
)

func checkScatter(t *testing.T, keys []int64, pl plan) {
	t.Helper()
	total := 0
	for _, p := range pl.parts {
		total += len(p)
	}
	if total != len(keys) {
		t.Fatalf("scatter lost keys: %d of %d", total, len(keys))
	}
	// Ranges must be disjoint and ordered: every element of partition i
	// is strictly below every element of partition i+1 once duplicates
	// are pinned to one side — i.e. max(part i) < min(part i+1) OR the
	// boundary value appears only on one side.
	for i := 0; i+1 < len(pl.parts); i++ {
		a, b := pl.parts[i], pl.parts[i+1]
		if len(a) == 0 || len(b) == 0 {
			continue
		}
		maxA, minB := a[0], b[0]
		for _, v := range a {
			if v > maxA {
				maxA = v
			}
		}
		for _, v := range b {
			if v < minB {
				minB = v
			}
		}
		if maxA >= minB {
			t.Fatalf("partitions %d and %d overlap: max %d >= min %d", i, i+1, maxA, minB)
		}
	}
}

func TestPartitionDisjointAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := make([]int64, 40000)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
	}
	weights := []float64{1, 1, 1, 1}
	pl := partition(keys, weights, 0.02, 2.5, rng)
	if len(pl.parts) != 4 || len(pl.splitters) != 3 {
		t.Fatalf("got %d parts / %d splitters, want 4/3", len(pl.parts), len(pl.splitters))
	}
	checkScatter(t, keys, pl)
	if pl.skew > 1.6 {
		t.Fatalf("uniform keys, equal weights: skew %.2f implausibly high", pl.skew)
	}
}

func TestPartitionWeightedShares(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]int64, 60000)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	// Backend capacities 3:1 — the heavy partition should get about 3x
	// the keys of the light one.
	weights := []float64{3, 1}
	pl := partition(keys, weights, 0.02, 2.5, rng)
	checkScatter(t, keys, pl)
	ratio := float64(len(pl.parts[0])) / float64(len(pl.parts[1]))
	if ratio < 2.2 || ratio > 4.0 {
		t.Fatalf("weighted 3:1 split produced ratio %.2f (sizes %d/%d)",
			ratio, len(pl.parts[0]), len(pl.parts[1]))
	}
}

func TestPartitionDuplicatesStayTogether(t *testing.T) {
	// Heavy duplication: only 5 distinct values across 10k keys. Each
	// distinct value must land in exactly one partition.
	rng := rand.New(rand.NewSource(99))
	keys := make([]int64, 10000)
	for i := range keys {
		keys[i] = int64(rng.Intn(5)) * 1000
	}
	pl := partition(keys, []float64{1, 1, 1}, 0.05, 2.5, rng)
	checkScatter(t, keys, pl)
	home := map[int64]int{}
	for pi, p := range pl.parts {
		for _, v := range p {
			if prev, seen := home[v]; seen && prev != pi {
				t.Fatalf("value %d split across partitions %d and %d", v, prev, pi)
			}
			home[v] = pi
		}
	}
}

func TestPartitionSkewGuardResamples(t *testing.T) {
	// All keys identical: no splitter set can balance this, so the skew
	// guard must fire its one resample and then accept the plan rather
	// than loop.
	keys := make([]int64, 8000)
	rng := rand.New(rand.NewSource(3))
	pl := partition(keys, []float64{1, 1, 1, 1}, 0.02, 1.5, rng)
	checkScatter(t, keys, pl)
	if !pl.resampled {
		t.Fatal("degenerate distribution did not trigger the skew resample")
	}
	if pl.skew < 3.9 {
		t.Fatalf("all-equal keys in 4 parts: skew %.2f, want ~4", pl.skew)
	}
}

func TestPartitionSinglePartPassthrough(t *testing.T) {
	keys := []int64{5, 3, 1}
	pl := partition(keys, []float64{1}, 0.1, 2.5, rand.New(rand.NewSource(1)))
	if len(pl.parts) != 1 || len(pl.parts[0]) != 3 {
		t.Fatalf("single-part plan mangled the keys: %+v", pl.parts)
	}
}

func TestSampleSplittersSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := make([]int64, 5000)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	sp := sampleSplitters(keys, []float64{1, 2, 1, 2}, 200, rng)
	if !sort.SliceIsSorted(sp, func(i, j int) bool { return sp[i] < sp[j] }) {
		t.Fatalf("splitters not sorted: %v", sp)
	}
}
