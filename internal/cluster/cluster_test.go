package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"knlmlm/internal/exec"
	"knlmlm/internal/fault"
	"knlmlm/internal/sched"
	"knlmlm/internal/serve"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/units"
	"knlmlm/internal/wire"
)

// bootBackend runs a real single-node stack (scheduler + HTTP front end)
// on an ephemeral port — the same thing mlmserve serves, in-process.
func bootBackend(t *testing.T) *httptest.Server {
	t.Helper()
	reg := telemetry.NewRegistry()
	sc, err := sched.New(sched.Config{
		MCDRAMBudget: units.Bytes(8 << 20),
		Workers:      2,
		QueueLimit:   64,
		TotalThreads: 8,
		Registry:     reg,
	})
	if err != nil {
		t.Fatalf("sched.New: %v", err)
	}
	t.Cleanup(sc.Close)
	srv, err := serve.New(serve.Config{Scheduler: sc, Registry: reg})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return hs
}

type testCluster struct {
	coord    *Coordinator
	http     *httptest.Server
	backends []*httptest.Server
}

func newTestCluster(t *testing.T, n int, mutate func(*Config)) *testCluster {
	t.Helper()
	var urls []string
	var servers []*httptest.Server
	for i := 0; i < n; i++ {
		hs := bootBackend(t)
		servers = append(servers, hs)
		urls = append(urls, hs.URL)
	}
	cfg := Config{
		Backends:     urls,
		PollInterval: 50 * time.Millisecond,
		Seed:         1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(coord.Close)
	srv, err := NewServer(ServerConfig{Coordinator: coord})
	if err != nil {
		t.Fatalf("cluster.NewServer: %v", err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return &testCluster{coord: coord, http: hs, backends: servers}
}

func testKeys(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63() - rng.Int63()
	}
	return keys
}

func wantSorted(keys []int64) []int64 {
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	return want
}

func checkResult(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result has %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func submitWaitJSON(t *testing.T, tc *testCluster, keys []int64) jobStatus {
	t.Helper()
	raw, _ := json.Marshal(sortRequest{Keys: keys, Wait: true})
	resp, err := http.Post(tc.http.URL+"/v1/sort", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST /v1/sort: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st jobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

func downloadJSON(t *testing.T, tc *testCluster, id string) []int64 {
	t.Helper()
	resp, err := http.Get(tc.http.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", resp.StatusCode, body)
	}
	var got []int64
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	return got
}

func TestClusterEndToEndJSON(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	keys := testKeys(50000, 42)
	st := submitWaitJSON(t, tc, keys)
	if st.State != "done" {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Parts < 2 {
		t.Fatalf("job used %d partitions, want >= 2", st.Parts)
	}
	checkResult(t, downloadJSON(t, tc, st.ID), wantSorted(keys))
	if got := tc.coord.m.partitions.Value(); got < 2 {
		t.Fatalf("cluster_partitions_total = %d, want >= 2", got)
	}
	var routed int64
	for _, ctr := range tc.coord.m.bytesRouted {
		routed += ctr.Value()
	}
	if routed != int64(len(keys)*8) {
		t.Fatalf("cluster_backend_bytes_routed_total sums to %d, want %d", routed, len(keys)*8)
	}
}

func TestClusterBinaryRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	keys := testKeys(30000, 7)
	body := wire.Encode(nil, keys, 0)
	req, _ := http.NewRequest(http.MethodPost, tc.http.URL+"/v1/sort?wait=1", bytes.NewReader(body))
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("binary submit: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	var st jobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decode status: %v", err)
	}

	dreq, _ := http.NewRequest(http.MethodGet, tc.http.URL+"/v1/jobs/"+st.ID+"/result", nil)
	dreq.Header.Set("Accept", wire.ContentType)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatalf("wire download: %v", err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("wire download: HTTP %d", dresp.StatusCode)
	}
	if ct := dresp.Header.Get("Content-Type"); !isWireContentType(ct) {
		t.Fatalf("wire download Content-Type %q", ct)
	}
	got, err := wire.Decode(dresp.Body, int64(len(keys)), nil)
	if err != nil {
		t.Fatalf("decode wire result: %v", err)
	}
	checkResult(t, got, wantSorted(keys))
}

func TestClusterResultConsumeOnce(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	st := submitWaitJSON(t, tc, testKeys(20000, 3))
	downloadJSON(t, tc, st.ID)
	resp, err := http.Get(tc.http.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("second GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("second result GET: HTTP %d, want 410", resp.StatusCode)
	}
}

func TestClusterDialFailover(t *testing.T) {
	// Backend 0 refuses every connection: partitions assigned to it must
	// fail over to backend 1 and the job must still complete correctly.
	inj := fault.MustNewInjector(5, fault.Spec{
		Stage:  exec.StageCopyIn,
		Kind:   fault.ConnKill,
		Rate:   1,
		Chunks: []int{0},
	})
	tc := newTestCluster(t, 2, func(c *Config) { c.ConnFaults = inj })
	keys := testKeys(40000, 11)
	st := submitWaitJSON(t, tc, keys)
	if st.State != "done" {
		t.Fatalf("job ended %s with backend 0 dead: %s", st.State, st.Error)
	}
	if st.Retries < 1 {
		t.Fatal("dial failover reported zero retries")
	}
	checkResult(t, downloadJSON(t, tc, st.ID), wantSorted(keys))
	if got := tc.coord.m.retries.Value(); got < 1 {
		t.Fatalf("cluster_partition_retries_total = %d, want >= 1", got)
	}
	if tc.coord.m.bytesRouted[1].Value() != int64(len(keys)*8) {
		t.Fatal("failover did not route all bytes to the surviving backend")
	}
}

func TestClusterStreamSeverRetry(t *testing.T) {
	// Sever backend 1's first result stream mid-download (MaxHits bounds
	// it to once). The merge must re-run the lost partition and deliver a
	// byte-correct result, with the retry visible in telemetry.
	inj := fault.MustNewInjector(9, fault.Spec{
		Stage:   exec.StageCopyOut,
		Kind:    fault.ConnKill,
		Rate:    1,
		Chunks:  []int{1},
		MaxHits: 1,
	})
	tc := newTestCluster(t, 2, func(c *Config) { c.ConnFaults = inj })
	keys := testKeys(40000, 13)
	st := submitWaitJSON(t, tc, keys)
	if st.State != "done" {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	checkResult(t, downloadJSON(t, tc, st.ID), wantSorted(keys))
	if got := tc.coord.m.retries.Value(); got < 1 {
		t.Fatalf("cluster_partition_retries_total = %d after a severed stream, want >= 1", got)
	}
	if inj.Counts()[fault.ConnKill] != 1 {
		t.Fatalf("injector fired %d times, want exactly 1", inj.Counts()[fault.ConnKill])
	}
}

func TestClusterHealthzFleetView(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	resp, err := http.Get(tc.http.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h healthBody
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz %d %q", resp.StatusCode, h.Status)
	}
	if len(h.Backends) != 2 {
		t.Fatalf("fleet view has %d backends, want 2", len(h.Backends))
	}
	var share float64
	for _, b := range h.Backends {
		if !b.Up {
			t.Fatalf("backend %d reported down", b.Index)
		}
		if b.Capacity.EWMACopyBps <= 0 || b.Capacity.Threads <= 0 {
			t.Fatalf("backend %d capacity block empty: %+v", b.Index, b.Capacity)
		}
		share += b.Weight
	}
	if share < 0.99 || share > 1.01 {
		t.Fatalf("backend weight shares sum to %.3f, want 1", share)
	}
}

func TestClusterSkewTelemetry(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	st := submitWaitJSON(t, tc, testKeys(30000, 17))
	if st.Skew <= 0 {
		t.Fatalf("job skew %v, want > 0", st.Skew)
	}
	if tc.coord.m.skew.Count() != 1 {
		t.Fatalf("cluster_partition_skew observations = %d, want 1", tc.coord.m.skew.Count())
	}
}

func TestClusterDrainRefusesSubmissions(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	if err := tc.coord.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	raw, _ := json.Marshal(sortRequest{Keys: []int64{3, 1, 2}})
	resp, err := http.Post(tc.http.URL+"/v1/sort", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST after drain: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: HTTP %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(tc.http.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: HTTP %d, want 503", hresp.StatusCode)
	}
}
