package cluster

import (
	"math/rand"
	"sort"
)

// Range partitioning: the coordinator splits a job's keys into P
// disjoint key ranges sized to the backends' measured capacity, so each
// backend sorts a share proportional to what it can actually absorb and
// the final merge degenerates to ordered streams.
//
// Splitters come from a sorted random sample. Sampling is the only pass
// the coordinator makes over the keys before scatter, so its cost is
// bounded by the sample rate; the skew guard below catches the rare bad
// sample. Duplicate keys never straddle a splitter — partition i holds
// [splitter[i-1], splitter[i]) — so equal keys always land together and
// the concatenated partition results are a correct total order.

// plan is one partitioning decision: P-1 splitters plus the measured
// outcome of applying them.
type plan struct {
	// splitters are the P-1 range bounds; partition i holds keys k with
	// splitters[i-1] <= k < splitters[i] (open ends at the extremes).
	splitters []int64
	// parts are the scattered key slices, one per partition, in range
	// order.
	parts [][]int64
	// skew is the worst partition's overfill ratio: its actual size over
	// its weight-proportional target. 1.0 is a perfect split.
	skew float64
	// resampled reports whether the skew guard forced a second, larger
	// sample.
	resampled bool
}

// sampleSplitters draws a random sample of keys, sorts it, and reads the
// splitters off the sample's weighted quantiles: partition i's target
// share is weights[i] of the total, so its splitter sits at the sample
// index where the cumulative weight crosses. sampleLen is clamped to
// [parts*8, len(keys)] — too small a sample cannot resolve P quantiles.
func sampleSplitters(keys []int64, weights []float64, sampleLen int, rng *rand.Rand) []int64 {
	parts := len(weights)
	if sampleLen < parts*8 {
		sampleLen = parts * 8
	}
	if sampleLen > len(keys) {
		sampleLen = len(keys)
	}
	sample := make([]int64, sampleLen)
	if sampleLen == len(keys) {
		copy(sample, keys)
	} else {
		for i := range sample {
			sample[i] = keys[rng.Intn(len(keys))]
		}
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })

	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	splitters := make([]int64, 0, parts-1)
	cum := 0.0
	for i := 0; i < parts-1; i++ {
		cum += weights[i] / wsum
		idx := int(cum * float64(len(sample)))
		if idx >= len(sample) {
			idx = len(sample) - 1
		}
		splitters = append(splitters, sample[idx])
	}
	return splitters
}

// scatter routes every key to its range partition. The per-key decision
// is a binary search over the splitters (first i with key < splitters[i];
// past the last splitter means the final partition), so duplicates of a
// splitter value all take the same branch and stay together.
func scatter(keys []int64, splitters []int64, weights []float64) [][]int64 {
	parts := len(splitters) + 1
	out := make([][]int64, parts)
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	for i := range out {
		// Pre-size to the weighted target with a little slack; a resample
		// decision is cheaper than chasing exact capacity.
		target := int(float64(len(keys))*weights[i]/wsum) + 16
		out[i] = make([]int64, 0, target+target/8)
	}
	for _, k := range keys {
		p := sort.Search(len(splitters), func(i int) bool { return k < splitters[i] })
		out[p] = append(out[p], k)
	}
	return out
}

// planSkew measures the worst overfill: partition size relative to its
// weight-proportional target. Empty targets (zero weight) are guarded by
// the router's weight floor.
func planSkew(parts [][]int64, weights []float64, n int) float64 {
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	worst := 0.0
	for i, p := range parts {
		target := float64(n) * weights[i] / wsum
		if target < 1 {
			target = 1
		}
		if r := float64(len(p)) / target; r > worst {
			worst = r
		}
	}
	return worst
}

// partition builds the job's scatter plan: sample, split, measure skew,
// and — when the sample produced a partition more than skewLimit times
// its target — resample once at 4x the sample size and keep the better
// plan. One bounded retry: a pathological key distribution (all keys
// equal, say) cannot be fixed by sampling harder, and the merge is
// correct under any skew; the limit only protects balance.
func partition(keys []int64, weights []float64, sampleRate, skewLimit float64, rng *rand.Rand) plan {
	if len(weights) == 1 {
		return plan{parts: [][]int64{keys}, skew: 1}
	}
	sampleLen := int(sampleRate * float64(len(keys)))
	pl := plan{splitters: sampleSplitters(keys, weights, sampleLen, rng)}
	pl.parts = scatter(keys, pl.splitters, weights)
	pl.skew = planSkew(pl.parts, weights, len(keys))
	if pl.skew <= skewLimit {
		return pl
	}
	re := plan{
		splitters: sampleSplitters(keys, weights, 4*sampleLen, rng),
		resampled: true,
	}
	re.parts = scatter(keys, re.splitters, weights)
	re.skew = planSkew(re.parts, weights, len(keys))
	if re.skew < pl.skew {
		return re
	}
	pl.resampled = true
	return pl
}
