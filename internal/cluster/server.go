package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"knlmlm/internal/wire"
)

// Server is the coordinator's HTTP face. It speaks the same protocol as
// a single mlmserve node — POST /v1/sort (JSON or binary), job status,
// streamed result download with wire content negotiation, /healthz,
// /metrics — so loadgen and other clients point at a coordinator with no
// changes; /healthz additionally carries the fleet view (a "backends"
// array), which is also how a client can tell the tiers apart.
type Server struct {
	coord        *Coordinator
	mux          *http.ServeMux
	maxBodyBytes int64
	chunkElems   int
}

// ServerConfig describes a Server.
type ServerConfig struct {
	// Coordinator is the routing core. Required.
	Coordinator *Coordinator
	// MaxBodyBytes bounds submit bodies. Zero selects 256 MiB — the
	// coordinator exists to take jobs bigger than one node wants.
	MaxBodyBytes int64
	// ResultChunkElems is the JSON result streaming granularity. Zero
	// selects 8192.
	ResultChunkElems int
}

// NewServer builds the HTTP front end.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Coordinator == nil {
		return nil, fmt.Errorf("cluster: Coordinator is required")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 256 << 20
	}
	if cfg.ResultChunkElems <= 0 {
		cfg.ResultChunkElems = 8192
	}
	s := &Server{
		coord:        cfg.Coordinator,
		mux:          http.NewServeMux(),
		maxBodyBytes: cfg.MaxBodyBytes,
		chunkElems:   cfg.ResultChunkElems,
	}
	s.mux.HandleFunc("POST /v1/sort", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain flips healthz to 503 and waits for in-flight jobs.
func (s *Server) Drain(ctx context.Context) error { return s.coord.Drain(ctx) }

// Wire bodies mirror internal/serve's so clients see one protocol.

type sortRequest struct {
	Keys         []int64 `json:"keys"`
	Priority     int     `json:"priority,omitempty"`
	DeadlineMS   int64   `json:"deadline_ms,omitempty"`
	Algorithm    string  `json:"algorithm,omitempty"`
	MegachunkLen int     `json:"megachunk_len,omitempty"`
	Wait         bool    `json:"wait,omitempty"`
}

type jobStatus struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	N         int     `json:"n"`
	Parts     int     `json:"parts,omitempty"`
	Retries   int     `json:"retries,omitempty"`
	Skew      float64 `json:"skew,omitempty"`
	Resampled bool    `json:"resampled,omitempty"`
	Error     string  `json:"error,omitempty"`
	ResultURL string  `json:"result_url,omitempty"`
	Enqueued  string  `json:"enqueued,omitempty"`
	Started   string  `json:"started,omitempty"`
	Finished  string  `json:"finished,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func statusOf(j *Job) jobStatus {
	j.mu.Lock()
	st := jobStatus{
		ID:        j.id,
		State:     j.state,
		N:         j.n,
		Parts:     len(j.parts),
		Skew:      j.skew,
		Resampled: j.resampled,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	enq, sta, fin := j.enq, j.started, j.fin
	done := j.state == stateDone
	j.mu.Unlock()
	st.Retries = j.Retries()
	if done {
		st.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	if !enq.IsZero() {
		st.Enqueued = enq.UTC().Format(time.RFC3339Nano)
	}
	if !sta.IsZero() {
		st.Started = sta.UTC().Format(time.RFC3339Nano)
	}
	if !fin.IsZero() {
		st.Finished = fin.UTC().Format(time.RFC3339Nano)
	}
	return st
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func isWireContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.EqualFold(strings.TrimSpace(ct), wire.ContentType)
}

func acceptsWire(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		if isWireContentType(part) {
			return true
		}
	}
	return false
}

// decodeSubmit parses either body encoding into a sortRequest; binary
// bodies carry options as query parameters exactly like the single-node
// protocol.
func (s *Server) decodeSubmit(w http.ResponseWriter, r *http.Request) (sortRequest, bool) {
	var req sortRequest
	bad := func(msg string) (sortRequest, bool) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: msg, Code: "bad-request"})
		return req, false
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	if !isWireContentType(r.Header.Get("Content-Type")) {
		dec := json.NewDecoder(body)
		if err := dec.Decode(&req); err != nil {
			return bad("bad request body: " + err.Error())
		}
		if _, err := dec.Token(); err != io.EOF {
			return bad("trailing data after JSON body")
		}
		return req, true
	}
	q := r.URL.Query()
	if v := q.Get("priority"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			return bad("bad priority: " + v)
		}
		req.Priority = p
	}
	if v := q.Get("deadline_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return bad("bad deadline_ms: " + v)
		}
		req.DeadlineMS = ms
	}
	if v := q.Get("megachunk_len"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return bad("bad megachunk_len: " + v)
		}
		req.MegachunkLen = n
	}
	req.Algorithm = q.Get("algorithm")
	req.Wait = q.Get("wait") == "1" || strings.EqualFold(q.Get("wait"), "true")
	if req.DeadlineMS == 0 {
		if ms, err := strconv.ParseInt(r.Header.Get("X-Deadline-Ms"), 10, 64); err == nil && ms > 0 {
			req.DeadlineMS = ms
		}
	}
	keys, err := wire.Decode(body, s.maxBodyBytes/8, nil)
	if err != nil {
		return bad("bad binary body: " + err.Error())
	}
	req.Keys = keys
	return req, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeSubmit(w, r)
	if !ok {
		return
	}
	if len(req.Keys) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "keys must be non-empty", Code: "bad-request"})
		return
	}
	j, err := s.coord.Submit(req.Keys, jobOptions{
		Priority:     req.Priority,
		DeadlineMS:   req.DeadlineMS,
		Algorithm:    req.Algorithm,
		MegachunkLen: req.MegachunkLen,
	})
	if err != nil {
		if errors.Is(err, errDraining) {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error(), Code: "draining"})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Code: "bad-request"})
		return
	}
	if req.Wait {
		if err := j.Wait(r.Context()); err != nil {
			return // client went away; the job keeps running
		}
		writeJSON(w, http.StatusOK, statusOf(j))
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, statusOf(j))
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.coord.Lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job", Code: "not-found"})
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, statusOf(j))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, statusOf(j))
}

// handleResult streams the merged result — chunked JSON array by
// default, the wire frame stream under Accept: application/x-mlm-keys.
// The merge runs inside this handler (backends -> merge -> socket); a
// client disconnect cancels the downloads. Consume-once, like the
// single node's spill results: a repeat GET answers 410 Gone.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	started := false
	var emit func([]int64) error
	var finish func() error
	if acceptsWire(r) {
		fw := wire.NewWriter(w, j.N(), 0)
		emit = func(batch []int64) error {
			if !started {
				w.Header().Set("Content-Type", wire.ContentType)
				w.Header().Set("X-Sort-Elements", strconv.Itoa(j.N()))
				started = true
			}
			if err := fw.Write(batch); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		}
		finish = fw.Close
	} else {
		first := true
		var buf []byte
		emit = func(batch []int64) error {
			if !started {
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("X-Sort-Elements", strconv.Itoa(j.N()))
				if _, err := w.Write([]byte("[")); err != nil {
					return err
				}
				started = true
			}
			for lo := 0; lo < len(batch); lo += s.chunkElems {
				hi := lo + s.chunkElems
				if hi > len(batch) {
					hi = len(batch)
				}
				buf = buf[:0]
				for _, v := range batch[lo:hi] {
					if !first {
						buf = append(buf, ',')
					}
					first = false
					buf = strconv.AppendInt(buf, v, 10)
				}
				if _, err := w.Write(buf); err != nil {
					return err
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			return nil
		}
		finish = func() error {
			if !started {
				w.Header().Set("Content-Type", "application/json")
				if _, err := w.Write([]byte("[")); err != nil {
					return err
				}
			}
			_, err := w.Write([]byte("]\n"))
			return err
		}
	}
	_, err := j.StreamResult(r.Context(), emit)
	switch {
	case err == nil:
		_ = finish()
	case errors.Is(err, ErrNotReady):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Code: "not-ready"})
	case errors.Is(err, ErrResultConsumed):
		writeJSON(w, http.StatusGone, errorBody{Error: err.Error(), Code: "result-consumed"})
	case started || r.Context().Err() != nil:
		// Bytes already on the wire (or the client left): the truncated
		// body is the only remaining failure signal.
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Code: "cluster-merge"})
	}
}

// healthBody is the coordinator's /healthz payload: overall status plus
// the per-backend fleet view.
type healthBody struct {
	Status   string        `json:"status"`
	Draining bool          `json:"draining"`
	Backends []backendView `json:"backends"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	body := healthBody{
		Status:   "ok",
		Draining: s.coord.Draining(),
		Backends: s.coord.backendViews(),
	}
	code := http.StatusOK
	if body.Draining {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	up := 0
	for _, b := range body.Backends {
		if b.Up {
			up++
		}
	}
	if up == 0 && code == http.StatusOK {
		body.Status = "no-backends"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.coord.Registry().WritePrometheus(w)
}
