package cluster

import (
	"knlmlm/internal/model"
	"knlmlm/internal/units"
)

// Bandwidth-aware routing: each backend's weight is the service rate the
// paper's Equation 1-5 model predicts from that node's own polled
// constants — its EWMA per-thread copy and compute rates and its thread
// budget — degraded by the node's live overload state (brownout level,
// queue depth). A node that is browned out to level 2 or queueing deeply
// gets proportionally smaller key ranges, which is the distributed
// restatement of the paper's thesis: provision work to match measured
// bandwidth, don't split evenly and hope.

// nodeRate solves the model for one backend and reports its predicted
// steady-state throughput in bytes/sec. The construction mirrors
// tune.SpillReadAhead's: the node's DDR tier is its copy pool's
// aggregate reach, its MCDRAM tier its compute pool's, and the optimal
// symmetric pool split over the node's thread budget prices the
// pipeline. Dataset size cancels out of a rate, so a nominal 1 GiB is
// used.
func nodeRate(c capacity) float64 {
	threads := c.Threads
	if threads < 3 {
		threads = 3
	}
	sCopy := units.BytesPerSec(c.EWMACopyBps)
	sComp := units.BytesPerSec(c.EWMACompBps)
	if sCopy <= 0 || sComp <= 0 {
		return 0
	}
	p := model.Params{
		BCopy:     units.Bytes(1 << 30),
		DDRMax:    sCopy * units.BytesPerSec(threads),
		MCDRAMMax: sComp * units.BytesPerSec(threads),
		SCopy:     sCopy,
		SComp:     sComp,
	}
	best := p.Optimal(threads, (threads-1)/2, 1)
	if best.TTotal <= 0 {
		return 0
	}
	return float64(p.BCopy) / float64(best.TTotal)
}

// backendWeight prices one backend for the splitter quantiles. The model
// rate is scaled by the node's overload state:
//
//   - brownout divides by (1 + level): a shed-spill node takes half
//     share, a critical-only node a quarter — mirroring how the brownout
//     controller itself sheds work classes stepwise;
//   - queue depth divides by (1 + depth/4): four queued jobs halve the
//     share, so backlog drains instead of compounds;
//   - zero lease headroom floors the weight at a tenth: the node can
//     still take work (the scheduler queues it) but new bytes should
//     overwhelmingly go where staging capacity is free.
//
// A down backend weighs zero.
func backendWeight(up bool, c capacity) float64 {
	if !up {
		return 0
	}
	w := nodeRate(c)
	if w <= 0 {
		return 0
	}
	w /= float64(1 + c.BrownoutLevel)
	w /= 1 + float64(c.QueueDepth)/4
	if c.HeadroomBytes <= 0 {
		w /= 10
	}
	return w
}

// weights snapshots a routing weight per backend. When every backend is
// down (startup before the first poll, or a full outage) it falls back
// to uniform weights so a job still scatters — the submit path will
// discover the truth per partition and retry.
func (c *Coordinator) weights() []float64 {
	out := make([]float64, len(c.backends))
	sum := 0.0
	for i, b := range c.backends {
		up, cap := b.snapshot()
		out[i] = backendWeight(up, cap)
		sum += out[i]
	}
	if sum <= 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	// Floor each live weight at 2% of the total so a struggling node keeps
	// a trickle of work — its EWMA rates only recover by being measured.
	floor := sum * 0.02
	for i := range out {
		if out[i] > 0 && out[i] < floor {
			out[i] = floor
		}
	}
	return out
}

// pickBackend chooses a failover target: the up backend with the highest
// current weight, excluding the given index (the one that just failed).
// Falls back to any backend — including the excluded one — when nothing
// is known to be up, so retries keep probing through a full outage.
func (c *Coordinator) pickBackend(exclude int) *backend {
	var best *backend
	bestW := -1.0
	for i, b := range c.backends {
		if i == exclude || !b.isUp() {
			continue
		}
		_, cap := b.snapshot()
		if w := backendWeight(true, cap); w > bestW {
			best, bestW = b, w
		}
	}
	if best != nil {
		return best
	}
	// Nothing up: round-robin over everything so probes spread.
	i := int(c.probeSeq.Add(1)) % len(c.backends)
	if i == exclude && len(c.backends) > 1 {
		i = (i + 1) % len(c.backends)
	}
	return c.backends[i]
}

// pollAll refreshes every backend's capacity snapshot concurrently.
func (c *Coordinator) pollAll() {
	done := make(chan struct{}, len(c.backends))
	for _, b := range c.backends {
		go func(b *backend) {
			b.poll(c.pollClient)
			done <- struct{}{}
		}(b)
	}
	for range c.backends {
		<-done
	}
}
