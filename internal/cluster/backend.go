package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"knlmlm/internal/telemetry"
	"knlmlm/internal/wire"
)

// backend is the coordinator's client handle on one mlmserve node: its
// last capacity poll, its up/down verdict, and the typed submit and
// download calls the partition state machine drives. All network faults
// funnel through the ConnFaults hooks so chaos tests can sever exactly
// one backend deterministically.
type backend struct {
	idx  int
	base string

	client *http.Client
	faults ConnFaults

	mu       sync.Mutex
	up       bool
	lastPoll time.Time
	cap      capacity

	bytesRouted *telemetry.Counter
	upGauge     *telemetry.Gauge
}

// capacity mirrors the serve /healthz capacity block — everything the
// router needs to weight this node.
type capacity struct {
	HeadroomBytes    int64   `json:"headroom_bytes"`
	QueueDepth       int     `json:"queue_depth"`
	BrownoutLevel    int     `json:"brownout_level"`
	EWMACopyBps      float64 `json:"ewma_copy_bps"`
	EWMACompBps      float64 `json:"ewma_comp_bps"`
	Threads          int     `json:"threads"`
	PredictedStartMS float64 `json:"predicted_start_ms"`
}

// healthResp is the subset of the backend /healthz body the poller reads.
type healthResp struct {
	Status   string   `json:"status"`
	Draining bool     `json:"draining"`
	Capacity capacity `json:"capacity"`
}

// remoteStatus is the subset of the backend job-status body the
// coordinator consumes.
type remoteStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	N     int    `json:"n"`
	Shed  bool   `json:"shed,omitempty"`
	Error string `json:"error,omitempty"`
}

// remoteError is a backend's non-2xx error body.
type remoteError struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// backpressureError marks a 429: the backend is alive but refusing work,
// so the right response is a bounded wait, not a failover.
type backpressureError struct {
	backend    int
	retryAfter time.Duration
	code       string
}

func (e *backpressureError) Error() string {
	return fmt.Sprintf("cluster: backend %d backpressure (%s, retry in %v)", e.backend, e.code, e.retryAfter)
}

// dialError marks a connection-level failure (refused dial, severed
// stream, injected kill): the backend may be dead, so the partition
// should fail over.
type dialError struct {
	backend int
	err     error
}

func (e *dialError) Error() string {
	return fmt.Sprintf("cluster: backend %d unreachable: %v", e.backend, e.err)
}

func (e *dialError) Unwrap() error { return e.err }

// poll refreshes the backend's capacity snapshot from /healthz. A
// draining or unreachable node is marked down; the router then routes
// around it until a later poll succeeds.
func (b *backend) poll(client *http.Client) {
	ok, cap := func() (bool, capacity) {
		req, err := http.NewRequest(http.MethodGet, b.base+"/healthz", nil)
		if err != nil {
			return false, capacity{}
		}
		resp, err := client.Do(req)
		if err != nil {
			return false, capacity{}
		}
		defer resp.Body.Close()
		var h healthResp
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
			return false, capacity{}
		}
		// A draining node answers 503 with a well-formed body: down for
		// routing purposes even though the poll succeeded.
		return resp.StatusCode == http.StatusOK && !h.Draining, h.Capacity
	}()
	b.mu.Lock()
	b.up = ok
	b.lastPoll = time.Now()
	if ok {
		b.cap = cap
	}
	b.mu.Unlock()
	if b.upGauge != nil {
		if ok {
			b.upGauge.Set(1)
		} else {
			b.upGauge.Set(0)
		}
	}
}

func (b *backend) isUp() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.up
}

func (b *backend) markDown() {
	b.mu.Lock()
	b.up = false
	b.mu.Unlock()
	if b.upGauge != nil {
		b.upGauge.Set(0)
	}
}

func (b *backend) snapshot() (bool, capacity) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.up, b.cap
}

// expectContinueBytes is the body size past which a submit rides
// Expect: 100-continue. For a big partition the header round-trip is
// cheap insurance — a backend whose admission model predicts a miss
// sheds the request before a single payload byte is sent (PR 8's
// pre-decode shedding, working across the wire). For a small one the
// handshake is pure toll: a loaded backend that defers reading the body
// (decode gate) never sends the interim 100, the transport waits out
// its full ExpectContinueTimeout before uploading anyway, and that stall
// idles backend workers the queue could have fed.
const expectContinueBytes = 4 << 20

// submitSorted uploads keys as one binary sort job and blocks (wait=1)
// until the backend reports it terminal, returning the remote job ID.
// Large bodies ride Expect: 100-continue with the deadline in
// X-Deadline-Ms, so the backend can refuse them pre-upload.
func (b *backend) submitSorted(ctx context.Context, keys []int64, opts jobOptions) (string, error) {
	if b.faults != nil && b.faults.FailDial(b.idx) {
		b.markDown()
		return "", &dialError{backend: b.idx, err: errInjectedDial}
	}
	q := url.Values{}
	q.Set("wait", "1")
	if opts.Priority != 0 {
		q.Set("priority", strconv.Itoa(opts.Priority))
	}
	if opts.Algorithm != "" {
		q.Set("algorithm", opts.Algorithm)
	}
	if opts.MegachunkLen > 0 {
		q.Set("megachunk_len", strconv.Itoa(opts.MegachunkLen))
	}
	body := wire.Encode(nil, keys, 0)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/sort?"+q.Encode(), bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	if len(body) >= expectContinueBytes || opts.DeadlineMS > 0 {
		req.Header.Set("Expect", "100-continue")
	}
	if opts.DeadlineMS > 0 {
		req.Header.Set("X-Deadline-Ms", strconv.FormatInt(opts.DeadlineMS, 10))
	}
	resp, err := b.client.Do(req)
	if err != nil {
		b.markDown()
		return "", &dialError{backend: b.idx, err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		b.markDown()
		return "", &dialError{backend: b.idx, err: err}
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		var re remoteError
		_ = json.Unmarshal(raw, &re)
		ra := time.Duration(re.RetryAfterMS) * time.Millisecond
		if ra <= 0 {
			ra = 250 * time.Millisecond
		}
		return "", &backpressureError{backend: b.idx, retryAfter: ra, code: re.Code}
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		var re remoteError
		_ = json.Unmarshal(raw, &re)
		return "", fmt.Errorf("cluster: backend %d submit: HTTP %d %s %s", b.idx, resp.StatusCode, re.Code, re.Error)
	}
	var st remoteStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return "", fmt.Errorf("cluster: backend %d submit: bad status body: %w", b.idx, err)
	}
	switch st.State {
	case "done":
	case "shed":
		// The backend admitted the job, then its overload controller
		// evicted it — retryable by the same rules as a 429.
		return "", &backpressureError{backend: b.idx, retryAfter: 250 * time.Millisecond, code: "shed"}
	default:
		return "", fmt.Errorf("cluster: backend %d job %s ended %s: %s", b.idx, st.ID, st.State, st.Error)
	}
	if b.bytesRouted != nil {
		b.bytesRouted.Add(int64(len(keys) * 8))
	}
	return st.ID, nil
}

// faultBody threads the injected stream-sever decision through a
// response body: each Read consults FailStream before touching the
// network, so a chaos spec can cut the stream at a deterministic read.
type faultBody struct {
	r      io.ReadCloser
	idx    int
	faults ConnFaults
}

func (f *faultBody) Read(p []byte) (int, error) {
	if f.faults != nil && f.faults.FailStream(f.idx) {
		return 0, errInjectedStream
	}
	return f.r.Read(p)
}

func (f *faultBody) Close() error { return f.r.Close() }

// openStream starts the binary result download for a remote job and
// returns the decoding reader. The caller owns closing the body.
func (b *backend) openStream(ctx context.Context, remoteID string) (*wire.Reader, io.Closer, error) {
	if b.faults != nil && b.faults.FailDial(b.idx) {
		b.markDown()
		return nil, nil, &dialError{backend: b.idx, err: errInjectedDial}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/jobs/"+remoteID+"/result", nil)
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Accept", wire.ContentType)
	resp, err := b.client.Do(req)
	if err != nil {
		b.markDown()
		return nil, nil, &dialError{backend: b.idx, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		// Gone/NotFound mean the remote result no longer exists (consumed,
		// evicted, or the node restarted): recoverable only by re-running
		// the partition, which is exactly what a dialError triggers.
		return nil, nil, &dialError{backend: b.idx, err: fmt.Errorf("result HTTP %d: %s", resp.StatusCode, raw)}
	}
	body := io.ReadCloser(&faultBody{r: resp.Body, idx: b.idx, faults: b.faults})
	fr, err := wire.NewReader(body)
	if err != nil {
		body.Close()
		b.markDown()
		return nil, nil, &dialError{backend: b.idx, err: err}
	}
	return fr, body, nil
}

// cancelRemote best-effort cancels a remote job (job teardown on the
// coordinator's cancel path); errors are ignored — the backend's own
// retention will reap it.
func (b *backend) cancelRemote(remoteID string) {
	req, err := http.NewRequest(http.MethodDelete, b.base+"/v1/jobs/"+remoteID, nil)
	if err != nil {
		return
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}

var (
	errInjectedDial   = fmt.Errorf("cluster: injected dial failure")
	errInjectedStream = fmt.Errorf("cluster: injected stream sever")
)
