package twolevel

import (
	"testing"

	"knlmlm/internal/units"
)

func TestDefaultSpecValid(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(256 * units.GiB)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.TotalBytes = 0 },
		func(c *Config) { c.MegachunkBytes = 0 },
		func(c *Config) { c.ChunkBytes = 0 },
		func(c *Config) { c.ChunkBytes = c.MegachunkBytes * 2 },
		func(c *Config) { c.MegachunkBytes = 64 * units.GiB }, // 2x exceeds DDR
		func(c *Config) { c.ChunkBytes = 8 * units.GiB },      // 3x exceeds MCDRAM
		func(c *Config) { c.OuterCopyThreads = 0 },
		func(c *Config) { c.InnerCopyThreads = 0 },
		func(c *Config) { c.ComputeThreads = 0 },
		func(c *Config) { c.SCopy = 0 },
		func(c *Config) { c.SComp = 0 },
		func(c *Config) { c.Passes = 0 },
		func(c *Config) { c.Spec.NVMBandwidth = 0 },
	}
	for i, m := range muts {
		c := good
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSimulateBeatsDirectNVMAccess(t *testing.T) {
	c := DefaultConfig(256 * units.GiB)
	res, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.SingleLevelBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || base <= 0 {
		t.Fatal("non-positive times")
	}
	// Streaming 4 passes from 6 GB/s NVM directly is far slower than
	// staging once and computing at MCDRAM speed.
	if float64(res.Time) > float64(base)*0.6 {
		t.Errorf("double chunking (%v) should beat direct NVM (%v) by a wide margin", res.Time, base)
	}
}

// The run is bounded below by the NVM staging time (the dataset crosses
// NVM twice at 6 GB/s, shared between in/out pools).
func TestSimulateNVMLowerBound(t *testing.T) {
	c := DefaultConfig(256 * units.GiB)
	res, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	lower := 2 * float64(c.TotalBytes) / float64(c.Spec.NVMBandwidth)
	if float64(res.Time) < lower*(1-1e-6) {
		t.Errorf("time %v below NVM staging bound %v", res.Time, units.Time(lower))
	}
}

// With heavy compute, the inner pipelines dominate; with trivial compute,
// NVM staging dominates — the two regimes of the doubled model.
func TestSimulateRegimes(t *testing.T) {
	light := DefaultConfig(128 * units.GiB)
	light.Passes = 0.5
	lr, err := light.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if lr.OuterCopyTime <= lr.InnerTime {
		t.Errorf("light compute should be NVM-staging bound: outer %v vs inner %v",
			lr.OuterCopyTime, lr.InnerTime)
	}

	heavy := DefaultConfig(128 * units.GiB)
	heavy.Passes = 128 // 2 passes/GB of NVM bandwidth puts the crossover near 64
	hr, err := heavy.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if hr.InnerTime <= hr.OuterCopyTime {
		t.Errorf("heavy compute should be inner-bound: inner %v vs outer %v",
			hr.InnerTime, hr.OuterCopyTime)
	}
	if hr.Time <= lr.Time {
		t.Error("more compute must take longer")
	}
}

// Partial final megachunk: total not divisible by megachunk size.
func TestSimulatePartialMegachunk(t *testing.T) {
	c := DefaultConfig(100 * units.GiB) // 32 GiB megachunks -> 3 full + 4 GiB tail
	res, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("non-positive time")
	}
	// Traffic: the trace's staged DDR bytes cover in+out of the dataset
	// plus the inner pipeline's DDR side.
	if res.Trace == nil || len(res.Trace.Phases) == 0 {
		t.Error("missing trace")
	}
}

func TestSimulateInvalidConfig(t *testing.T) {
	c := DefaultConfig(256 * units.GiB)
	c.Passes = -1
	if _, err := c.Simulate(); err == nil {
		t.Error("invalid config accepted by Simulate")
	}
	if _, err := c.SingleLevelBaseline(); err == nil {
		t.Error("invalid config accepted by SingleLevelBaseline")
	}
}

// Faster NVM shrinks the staging-bound runtime (the what-if the paper's
// conclusion gestures at).
func TestFasterNVMHelpsWhenStagingBound(t *testing.T) {
	slow := DefaultConfig(256 * units.GiB)
	slow.Passes = 1
	fast := slow
	fast.Spec.NVMBandwidth = units.GBps(24)
	sr, err := slow.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fast.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Time >= sr.Time {
		t.Errorf("4x NVM bandwidth did not help: %v vs %v", fr.Time, sr.Time)
	}
}
