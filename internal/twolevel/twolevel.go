// Package twolevel implements the paper's closing future-work item: "another
// level of memory is also conceivable, e.g., high capacity storage based on
// non-volatile memory such as 3D-XPoint... now there may be double levels of
// chunking to consider."
//
// The memory system gains a third device (NVM: huge capacity, ~6 GB/s) below
// DDR, and the chunking recipe nests: NVM-resident data streams through DDR
// in *megachunks* while each DDR-resident megachunk streams through MCDRAM in
// *chunks*, exactly as in the single-level pipeline. Both staging levels are
// double-buffered: the NVM copy of megachunk k+1 overlaps the inner pipeline
// of megachunk k.
package twolevel

import (
	"fmt"

	"knlmlm/internal/bandwidth"
	"knlmlm/internal/chunk"
	"knlmlm/internal/trace"
	"knlmlm/internal/units"
)

// Devices in the three-level system, in fixed order.
const (
	NVM    = bandwidth.DeviceID(0)
	DDR    = bandwidth.DeviceID(1)
	MCDRAM = bandwidth.DeviceID(2)
)

// Spec describes the three-level machine.
type Spec struct {
	NVMBandwidth    units.BytesPerSec
	DDRBandwidth    units.BytesPerSec
	MCDRAMBandwidth units.BytesPerSec
	DDRCapacity     units.Bytes
	MCDRAMCapacity  units.Bytes
}

// DefaultSpec is the paper's KNL plus a 3D-XPoint-class NVM tier.
func DefaultSpec() Spec {
	return Spec{
		NVMBandwidth:    units.GBps(6),
		DDRBandwidth:    units.GBps(90),
		MCDRAMBandwidth: units.GBps(400),
		DDRCapacity:     96 * units.GiB,
		MCDRAMCapacity:  16 * units.GiB,
	}
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.NVMBandwidth <= 0 || s.DDRBandwidth <= 0 || s.MCDRAMBandwidth <= 0 {
		return fmt.Errorf("twolevel: bandwidths must be positive")
	}
	if s.DDRCapacity <= 0 || s.MCDRAMCapacity <= 0 {
		return fmt.Errorf("twolevel: capacities must be positive")
	}
	return nil
}

// System builds the three-device arbiter.
func (s Spec) System() *bandwidth.System {
	return bandwidth.NewSystem(
		bandwidth.Device{Name: "NVM", Cap: s.NVMBandwidth},
		bandwidth.Device{Name: "DDR", Cap: s.DDRBandwidth},
		bandwidth.Device{Name: "MCDRAM", Cap: s.MCDRAMBandwidth},
	)
}

// Config describes a doubly-chunked streaming computation.
type Config struct {
	Spec Spec
	// TotalBytes is the NVM-resident dataset.
	TotalBytes units.Bytes
	// MegachunkBytes is the NVM->DDR staging unit; with double buffering,
	// 2x must fit in DDR alongside the inner pipeline's space.
	MegachunkBytes units.Bytes
	// ChunkBytes is the DDR->MCDRAM staging unit of the inner pipeline.
	ChunkBytes units.Bytes
	// OuterCopyThreads move NVM<->DDR; InnerCopyThreads move DDR<->MCDRAM.
	OuterCopyThreads int
	InnerCopyThreads int
	// ComputeThreads run the kernel; SComp is their per-thread rate and
	// Passes the kernel's read+write sweeps per chunk.
	ComputeThreads int
	SCopy          units.BytesPerSec
	SComp          units.BytesPerSec
	Passes         float64
}

// DefaultConfig stages total bytes with the paper-like thread split.
func DefaultConfig(total units.Bytes) Config {
	return Config{
		Spec:             DefaultSpec(),
		TotalBytes:       total,
		MegachunkBytes:   32 * units.GiB,
		ChunkBytes:       1 * units.GiB,
		OuterCopyThreads: 4,
		InnerCopyThreads: 8,
		ComputeThreads:   232,
		SCopy:            units.GBps(4.8),
		SComp:            units.GBps(6.78),
		Passes:           4,
	}
}

// Validate checks the configuration, including the DDR capacity constraint
// for double-buffered megachunks.
func (c Config) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	switch {
	case c.TotalBytes <= 0:
		return fmt.Errorf("twolevel: total %v must be positive", c.TotalBytes)
	case c.MegachunkBytes <= 0 || c.ChunkBytes <= 0:
		return fmt.Errorf("twolevel: staging sizes must be positive")
	case c.ChunkBytes > c.MegachunkBytes:
		return fmt.Errorf("twolevel: chunk %v exceeds megachunk %v", c.ChunkBytes, c.MegachunkBytes)
	case 2*c.MegachunkBytes > c.Spec.DDRCapacity:
		return fmt.Errorf("twolevel: 2 x %v megachunks exceed DDR %v", c.MegachunkBytes, c.Spec.DDRCapacity)
	case 3*c.ChunkBytes > c.Spec.MCDRAMCapacity:
		return fmt.Errorf("twolevel: 3 x %v chunks exceed MCDRAM %v", c.ChunkBytes, c.Spec.MCDRAMCapacity)
	case c.OuterCopyThreads < 1 || c.InnerCopyThreads < 1 || c.ComputeThreads < 1:
		return fmt.Errorf("twolevel: thread pools must be positive")
	case c.SCopy <= 0 || c.SComp <= 0:
		return fmt.Errorf("twolevel: rates must be positive")
	case c.Passes <= 0:
		return fmt.Errorf("twolevel: passes must be positive")
	}
	return nil
}

// innerPipeline builds the DDR<->MCDRAM pipeline for one megachunk.
func (c Config) innerPipeline(mcBytes units.Bytes) *chunk.Pipeline {
	copySpec := func(label string) *chunk.StageSpec {
		return &chunk.StageSpec{
			Label:            label,
			Threads:          c.InnerCopyThreads,
			PerThreadRate:    c.SCopy,
			Demand:           map[bandwidth.DeviceID]float64{DDR: 1, MCDRAM: 1},
			WorkPerChunkByte: 1,
			Priority:         1,
		}
	}
	return &chunk.Pipeline{
		Total:  mcBytes,
		Chunk:  c.ChunkBytes,
		CopyIn: copySpec("inner-copy-in"),
		Compute: &chunk.StageSpec{
			Label:            "compute",
			Threads:          c.ComputeThreads,
			PerThreadRate:    c.SComp,
			Demand:           map[bandwidth.DeviceID]float64{MCDRAM: 1},
			WorkPerChunkByte: 2 * c.Passes,
		},
		CopyOut: copySpec("inner-copy-out"),
	}
}

// Result reports a doubly-chunked run.
type Result struct {
	Time units.Time
	// OuterCopyTime and InnerTime decompose the bound: the run is limited
	// by the slower of the NVM staging and the per-megachunk inner
	// pipelines.
	OuterCopyTime units.Time
	InnerTime     units.Time
	Trace         *trace.Trace
}

// Simulate runs the doubly-chunked pipeline. The outer level is
// double-buffered: megachunk k's inner pipeline overlaps megachunk k+1's
// NVM->DDR copy-in and megachunk k-1's copy-out; each outer step costs
// max(outer staging, inner pipeline). The outer copy pool contends with the
// inner pipeline on DDR through the shared arbiter.
func (c Config) Simulate() (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	sys := c.Spec.System()
	n := int((c.TotalBytes + c.MegachunkBytes - 1) / c.MegachunkBytes)

	tr := &trace.Trace{Name: "two-level"}
	var now, outerTotal, innerTotal units.Time

	mcSize := func(i int) units.Bytes {
		if i == n-1 {
			if rem := c.TotalBytes - units.Bytes(n-1)*c.MegachunkBytes; rem > 0 {
				return rem
			}
		}
		return c.MegachunkBytes
	}

	// Outer steps: step s stages megachunk s in from NVM while megachunk
	// s-1 runs its inner pipeline and megachunk s-2 drains back to NVM.
	for step := 0; step < n+2; step++ {
		var flows []*bandwidth.Flow
		outerFlow := func(label string, idx int) *bandwidth.Flow {
			return &bandwidth.Flow{
				Label:        fmt.Sprintf("%s[%d]", label, idx),
				Threads:      c.OuterCopyThreads,
				PerThreadCap: c.SCopy,
				Demand:       map[bandwidth.DeviceID]float64{NVM: 1, DDR: 1},
				Work:         mcSize(idx),
				Priority:     2, // outer staging outranks inner traffic on DDR
			}
		}
		if step < n {
			flows = append(flows, outerFlow("nvm-copy-in", step))
		}
		if step >= 2 && step-2 < n {
			flows = append(flows, outerFlow("nvm-copy-out", step-2))
		}

		var stepOuter units.Time
		if len(flows) > 0 {
			res := sys.Run(flows)
			stepOuter = res.Makespan
			for _, f := range flows {
				tr.Add(trace.Phase{
					Label:    "nvm-staging",
					Start:    now,
					Duration: stepOuter,
					DDRBytes: units.Bytes(float64(f.Work)),
				})
			}
		}

		var stepInner units.Time
		if step >= 1 && step-1 < n {
			inner := c.innerPipeline(mcSize(step - 1)).SimulateBarrier(sys)
			stepInner = inner.TotalTime()
			for _, p := range inner.Phases {
				p.Start += now
				tr.Add(p)
			}
		}

		outerTotal += stepOuter
		innerTotal += stepInner
		if stepInner > stepOuter {
			now += stepInner
		} else {
			now += stepOuter
		}
	}
	return Result{Time: now, OuterCopyTime: outerTotal, InnerTime: innerTotal, Trace: tr}, nil
}

// SingleLevelBaseline simulates the same computation with the data accessed
// directly from NVM (no staging): the compute flow demands NVM bandwidth.
// It is the do-nothing comparator that shows why double chunking matters.
func (c Config) SingleLevelBaseline() (units.Time, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	sys := c.Spec.System()
	f := &bandwidth.Flow{
		Label:        "compute-from-nvm",
		Threads:      c.ComputeThreads,
		PerThreadCap: c.SComp,
		Demand:       map[bandwidth.DeviceID]float64{NVM: 1},
		Work:         units.Bytes(2 * c.Passes * float64(c.TotalBytes)),
	}
	res := sys.Run([]*bandwidth.Flow{f})
	return res.Makespan, nil
}
