package knlmlm

import (
	"fmt"

	"knlmlm/internal/knl"
	"knlmlm/internal/mem"
	"knlmlm/internal/mergebench"
	"knlmlm/internal/mlmsort"
	"knlmlm/internal/model"
	"knlmlm/internal/report"
	"knlmlm/internal/stats"
	"knlmlm/internal/stream"
	"knlmlm/internal/units"
	"knlmlm/internal/workload"
)

// Table1Row is one cell of the paper's Table 1.
type Table1Row struct {
	Elements  int64
	Order     workload.Order
	Algorithm mlmsort.Algorithm
	Summary   stats.Summary // seconds, over Runs repetitions
}

// Table1Runs is the paper's repetition count.
const Table1Runs = 10

// Table1 regenerates the paper's Table 1: mean and standard deviation of
// ten runs for every (size, order, algorithm) cell.
func Table1(seed int64) []Table1Row {
	var rows []Table1Row
	for _, order := range workload.PaperOrders() {
		for _, n := range PaperSizes() {
			cfg := mlmsort.PaperSortConfig(n, order)
			for _, a := range mlmsort.Algorithms() {
				rows = append(rows, Table1Row{
					Elements:  n,
					Order:     order,
					Algorithm: a,
					Summary:   mlmsort.Repeated(a, cfg, Table1Runs, seed),
				})
			}
		}
	}
	return rows
}

// Table1Report renders Table 1 rows in the paper's layout.
func Table1Report(rows []Table1Row) *report.Table {
	t := &report.Table{
		Title:   "Table 1: Raw sorting performance (averages of 10 runs each)",
		Headers: []string{"Elements", "Input Order", "Algorithm", "Mean(s)", "Std. Dev.(s)"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Elements),
			r.Order.String(),
			r.Algorithm.String(),
			fmt.Sprintf("%.2f", r.Summary.Mean),
			fmt.Sprintf("%.4f", r.Summary.StdDev),
		)
	}
	return t
}

// Fig6Row is one bar of Figure 6: a variant's speedup over GNU-flat.
type Fig6Row struct {
	Elements  int64
	Algorithm mlmsort.Algorithm
	Speedup   float64
}

// Fig6 regenerates Figure 6 (a: random, b: reverse) from Table 1 rows.
func Fig6(rows []Table1Row, order workload.Order) []Fig6Row {
	base := map[int64]float64{}
	for _, r := range rows {
		if r.Order == order && r.Algorithm == mlmsort.GNUFlat {
			base[r.Elements] = r.Summary.Mean
		}
	}
	var out []Fig6Row
	for _, r := range rows {
		if r.Order != order {
			continue
		}
		out = append(out, Fig6Row{
			Elements:  r.Elements,
			Algorithm: r.Algorithm,
			Speedup:   stats.Speedup(base[r.Elements], r.Summary.Mean),
		})
	}
	return out
}

// Fig6Report renders one Figure 6 panel.
func Fig6Report(rows []Fig6Row, order workload.Order) *report.Table {
	panel := "a"
	if order == workload.Reverse {
		panel = "b"
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 6%s: speedup over GNU-flat (%v inputs)", panel, order),
		Headers: []string{"Elements", "Algorithm", "Speedup"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Elements), r.Algorithm.String(), report.SpeedupCell(r.Speedup))
	}
	return t
}

// Fig7Point is one point of Figure 7: time vs chunk size at 6 G elements.
type Fig7Point struct {
	Algorithm     mlmsort.Algorithm
	ChunkElements int64
	Seconds       float64
	// Feasible is false for flat-mode chunk sizes exceeding MCDRAM, which
	// the paper's Figure 7 cannot plot either.
	Feasible bool
}

// Fig7ChunkSizes is the sweep grid: 62.5 M to 6 G elements, doubling, plus
// the paper's 1.5 G point. MCDRAM (16 GiB) holds ~2.1 G elements, so the
// flat-mode series ends at 2 G while MLM-implicit continues improving
// beyond it — the figure's headline observation.
func Fig7ChunkSizes() []int64 {
	return []int64{
		62_500_000, 125_000_000, 250_000_000, 500_000_000,
		1_000_000_000, 1_500_000_000, 2_000_000_000,
		3_000_000_000, 6_000_000_000,
	}
}

// Fig7 regenerates Figure 7 for MLM-sort (flat) and MLM-implicit (cache).
func Fig7() []Fig7Point {
	const n = 6_000_000_000
	capacity := MCDRAMCapacity()
	var out []Fig7Point
	for _, a := range []mlmsort.Algorithm{mlmsort.MLMSort, mlmsort.MLMImplicit} {
		for _, chunk := range Fig7ChunkSizes() {
			p := Fig7Point{Algorithm: a, ChunkElements: chunk, Feasible: true}
			if a == mlmsort.MLMSort && units.BytesForElements(chunk) > capacity {
				p.Feasible = false
				out = append(out, p)
				continue
			}
			cfg := mlmsort.PaperSortConfig(n, workload.Random)
			cfg.MegachunkElements = chunk
			p.Seconds = mlmsort.Simulate(a, cfg).Time.Seconds()
			out = append(out, p)
		}
	}
	return out
}

// Fig7Report renders the Figure 7 series.
func Fig7Report(points []Fig7Point) *report.Table {
	t := &report.Table{
		Title:   "Figure 7: chunked sort time vs chunk size (6 G int64 elements, random)",
		Headers: []string{"Algorithm", "Chunk (elements)", "Time(s)"},
	}
	for _, p := range points {
		cell := "n/a (exceeds MCDRAM)"
		if p.Feasible {
			cell = fmt.Sprintf("%.2f", p.Seconds)
		}
		t.AddRow(p.Algorithm.String(), fmt.Sprintf("%d", p.ChunkElements), cell)
	}
	return t
}

// Table2 regenerates the paper's Table 2 by running the STREAM-style
// calibration against the simulated machine.
func Table2() stream.Calibration {
	m := NewPaperMachine(mem.Flat)
	return stream.Calibrate(m, units.GBps(4.8), units.GBps(6.78))
}

// Table2Report renders Table 2.
func Table2Report(cal stream.Calibration) *report.Table {
	t := &report.Table{
		Title:   "Table 2: model parameters (measured on the simulated machine)",
		Headers: []string{"Parameter", "Value", "Description"},
	}
	t.AddRow("B_copy", "14.9 GB", "Data size (merge benchmark)")
	t.AddRow("DDR_max", fmt.Sprintf("%.0f GB/s", cal.DDRMax.GBpsValue()), "Max DDR bandwidth (STREAM)")
	t.AddRow("MCDRAM_max", fmt.Sprintf("%.0f GB/s", cal.MCDRAMMax.GBpsValue()), "Max MCDRAM bandwidth (STREAM)")
	t.AddRow("S_copy", fmt.Sprintf("%.1f GB/s", cal.SCopy.GBpsValue()), "Per-thread copy rate, unconstrained")
	t.AddRow("S_comp", fmt.Sprintf("%.2f GB/s", cal.SComp.GBpsValue()), "Per-thread compute rate, unconstrained")
	return t
}

// Fig8Repeats and Fig8CopyThreads are the paper's sweep grids.
func Fig8Repeats() []int     { return []int{1, 2, 4, 8, 16, 32, 64} }
func Fig8CopyThreads() []int { return []int{1, 2, 4, 8, 16, 32} }

// Fig8aPoint is one model estimate: predicted time at (repeats, copy-in
// threads).
type Fig8aPoint struct {
	Repeats     int
	CopyThreads int
	Seconds     float64
}

// Fig8a regenerates Figure 8a: Section 3.2 model estimates across the
// sweep, at every integer copy-thread count up to 32.
func Fig8a() []Fig8aPoint {
	p := model.PaperTable2()
	var out []Fig8aPoint
	for _, r := range Fig8Repeats() {
		for c := 1; c <= 32; c++ {
			pred := p.Evaluate(model.SymmetricPools(c, 256), float64(r))
			out = append(out, Fig8aPoint{Repeats: r, CopyThreads: c, Seconds: pred.TTotal.Seconds()})
		}
	}
	return out
}

// Fig8bPoint is one simulated merge-benchmark measurement.
type Fig8bPoint struct {
	Repeats     int
	CopyThreads int
	Seconds     float64
}

// Fig8b regenerates Figure 8b: the merge benchmark on the simulated
// machine at the paper's power-of-two copy-thread samples.
func Fig8b() []Fig8bPoint {
	m := NewPaperMachine(mem.Flat)
	res := mergebench.Sweep(m, Fig8Repeats(), Fig8CopyThreads())
	var out []Fig8bPoint
	for i, r := range Fig8Repeats() {
		for j, c := range Fig8CopyThreads() {
			out = append(out, Fig8bPoint{Repeats: r, CopyThreads: c, Seconds: res[i][j].Time.Seconds()})
		}
	}
	return out
}

// Table3Row compares the model's optimal copy-thread count with the
// simulated-empirical optimum.
type Table3Row struct {
	Repeats   int
	Model     int
	Empirical int
}

// Table3 regenerates the paper's Table 3. The model column searches every
// integer copy-thread count (as the paper's model does); the empirical
// column samples powers of two (as the paper's runs did).
func Table3() []Table3Row {
	p := model.PaperTable2()
	m := NewPaperMachine(mem.Flat)
	emp := mergebench.OptimalCopyThreads(m, Fig8Repeats(), Fig8CopyThreads())
	var rows []Table3Row
	for i, r := range Fig8Repeats() {
		rows = append(rows, Table3Row{
			Repeats:   r,
			Model:     p.Optimal(256, 32, float64(r)).Pools.In,
			Empirical: emp[i],
		})
	}
	return rows
}

// Table3Report renders Table 3.
func Table3Report(rows []Table3Row) *report.Table {
	t := &report.Table{
		Title:   "Table 3: optimal number of copy threads, model vs empirical",
		Headers: []string{"Number of Repeats", "Model", "Empirical (Powers of 2)"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Repeats), fmt.Sprintf("%d", r.Model), fmt.Sprintf("%d", r.Empirical))
	}
	return t
}

// BenderResult is the Section 4 corroboration of Bender et al.'s
// prediction.
type BenderResult struct {
	GNUFlatSeconds  float64
	GNUCacheSeconds float64
	BasicSeconds    float64
	GainOverFlat    float64 // ~1.3x predicted
	BeatsCacheMode  bool    // the paper found it does NOT
}

// Bender runs the basic chunked algorithm of Bender et al. against the GNU
// baselines at 4 G random elements.
func Bender() BenderResult {
	cfg := mlmsort.PaperSortConfig(4_000_000_000, workload.Random)
	flat := mlmsort.Simulate(mlmsort.GNUFlat, cfg).Time.Seconds()
	cache := mlmsort.Simulate(mlmsort.GNUCache, cfg).Time.Seconds()
	basic := mlmsort.Simulate(mlmsort.BasicChunked, cfg).Time.Seconds()
	return BenderResult{
		GNUFlatSeconds:  flat,
		GNUCacheSeconds: cache,
		BasicSeconds:    basic,
		GainOverFlat:    flat / basic,
		BeatsCacheMode:  basic < cache,
	}
}

// MachineInMode is a convenience re-export used by examples and benches.
func MachineInMode(mode mem.Mode) *knl.Machine { return NewPaperMachine(mode) }
