package knlmlm

import (
	"strings"
	"testing"

	"knlmlm/internal/mlmsort"
	"knlmlm/internal/units"
	"knlmlm/internal/workload"
)

func TestTable1ShapeAndContent(t *testing.T) {
	rows := Table1(1)
	// 2 orders x 3 sizes x 5 algorithms.
	if len(rows) != 30 {
		t.Fatalf("Table1 has %d rows, want 30", len(rows))
	}
	for _, r := range rows {
		if r.Summary.N != Table1Runs {
			t.Errorf("%v/%v/%v: %d runs, want %d", r.Elements, r.Order, r.Algorithm, r.Summary.N, Table1Runs)
		}
		if r.Summary.Mean <= 0 {
			t.Errorf("%v/%v/%v: non-positive mean", r.Elements, r.Order, r.Algorithm)
		}
		if r.Summary.StdDev <= 0 {
			t.Errorf("%v/%v/%v: zero noise", r.Elements, r.Order, r.Algorithm)
		}
	}
	// Deterministic in seed.
	again := Table1(1)
	for i := range rows {
		if rows[i].Summary.Mean != again[i].Summary.Mean {
			t.Fatal("Table1 not deterministic in seed")
		}
	}
}

func TestTable1ReportRendering(t *testing.T) {
	tab := Table1Report(Table1(1))
	s := tab.ASCII()
	for _, want := range []string{"GNU-flat", "MLM-implicit", "random", "reverse", "2000000000"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 report missing %q", want)
		}
	}
	if md := tab.Markdown(); !strings.Contains(md, "| Elements |") {
		t.Error("markdown rendering broken")
	}
	if csv := tab.CSV(); !strings.Contains(csv, "Elements,Input Order") {
		t.Error("csv rendering broken")
	}
}

func TestFig6SpeedupBand(t *testing.T) {
	rows := Table1(1)
	for _, order := range workload.PaperOrders() {
		f := Fig6(rows, order)
		if len(f) != 15 {
			t.Fatalf("Fig6 %v has %d bars, want 15", order, len(f))
		}
		for _, r := range f {
			if r.Algorithm == mlmsort.GNUFlat {
				if !units.AlmostEqual(r.Speedup, 1, 1e-9) {
					t.Errorf("GNU-flat speedup = %v, want 1", r.Speedup)
				}
				continue
			}
			if r.Speedup <= 1.0 || r.Speedup > 2.5 {
				t.Errorf("%v/%v n=%d: speedup %.2f outside plausible band",
					order, r.Algorithm, r.Elements, r.Speedup)
			}
		}
	}
}

func TestFig7Shape(t *testing.T) {
	pts := Fig7()
	if len(pts) != 2*len(Fig7ChunkSizes()) {
		t.Fatalf("Fig7 has %d points", len(pts))
	}
	// Flat-mode (MLM-sort) series: larger chunks are faster, infeasible
	// beyond MCDRAM.
	var flat, implicit []Fig7Point
	for _, p := range pts {
		if p.Algorithm == mlmsort.MLMSort {
			flat = append(flat, p)
		} else {
			implicit = append(implicit, p)
		}
	}
	// Flat series: larger chunks trend faster. Adjacent points may ripple
	// by a small margin where the megachunk count quantises (K = ceil(N/M)
	// drops in steps), so the assertions are: no adjacent rise above 2%,
	// and a substantial end-to-end improvement.
	const rippleTol = 1.02
	var firstFlat, lastFlat float64
	for i, p := range flat {
		if !p.Feasible {
			if units.BytesForElements(p.ChunkElements) <= MCDRAMCapacity() {
				t.Errorf("chunk %d marked infeasible but fits", p.ChunkElements)
			}
			continue
		}
		if firstFlat == 0 {
			firstFlat = p.Seconds
		}
		if i > 0 && flat[i-1].Feasible && p.Seconds > flat[i-1].Seconds*rippleTol {
			t.Errorf("MLM-sort: chunk %d (%.2fs) rose more than 2%% over chunk %d (%.2fs)",
				p.ChunkElements, p.Seconds, flat[i-1].ChunkElements, flat[i-1].Seconds)
		}
		lastFlat = p.Seconds
	}
	if lastFlat >= firstFlat*0.97 {
		t.Errorf("MLM-sort: largest chunk (%.2fs) should clearly beat smallest (%.2fs)", lastFlat, firstFlat)
	}
	// Implicit series: feasible at every size, same ripple bound, and the
	// best point lies beyond MCDRAM capacity — the figure's headline
	// ("MLM-implicit can continue improving as megachunk size exceeds
	// MCDRAM").
	best := implicit[0]
	for i, p := range implicit {
		if !p.Feasible {
			t.Fatalf("implicit point %d infeasible", i)
		}
		if i > 0 && p.Seconds > implicit[i-1].Seconds*rippleTol {
			t.Errorf("MLM-implicit: chunk %d (%.2fs) rose more than 2%% over previous (%.2fs)",
				p.ChunkElements, p.Seconds, implicit[i-1].Seconds)
		}
		if p.Seconds < best.Seconds {
			best = p
		}
	}
	if units.BytesForElements(best.ChunkElements) <= MCDRAMCapacity() {
		t.Errorf("implicit's best chunk (%d elements, %.2fs) should exceed MCDRAM capacity",
			best.ChunkElements, best.Seconds)
	}
}

func TestTable2RecoversPaperValues(t *testing.T) {
	cal := Table2()
	if !units.AlmostEqual(float64(cal.DDRMax), 90e9, 1e-6) ||
		!units.AlmostEqual(float64(cal.MCDRAMMax), 400e9, 1e-6) ||
		!units.AlmostEqual(float64(cal.SCopy), 4.8e9, 1e-6) ||
		!units.AlmostEqual(float64(cal.SComp), 6.78e9, 1e-6) {
		t.Errorf("Table 2 calibration = %+v", cal)
	}
	if s := Table2Report(cal).ASCII(); !strings.Contains(s, "S_copy") {
		t.Error("Table 2 report missing rows")
	}
}

func TestFig8aGrid(t *testing.T) {
	pts := Fig8a()
	if len(pts) != len(Fig8Repeats())*32 {
		t.Fatalf("Fig8a has %d points", len(pts))
	}
	for _, p := range pts {
		if p.Seconds <= 0 {
			t.Fatalf("non-positive model time at %+v", p)
		}
	}
}

func TestFig8bGrid(t *testing.T) {
	pts := Fig8b()
	if len(pts) != len(Fig8Repeats())*len(Fig8CopyThreads()) {
		t.Fatalf("Fig8b has %d points", len(pts))
	}
	for _, p := range pts {
		if p.Seconds <= 0 {
			t.Fatalf("non-positive simulated time at %+v", p)
		}
	}
}

// Table 3's shape: both columns non-increasing in repeats; copy-bound end
// saturates DDR (>= 8 copy threads), compute-bound end uses 1-2.
func TestTable3Shape(t *testing.T) {
	rows := Table3()
	if len(rows) != len(Fig8Repeats()) {
		t.Fatalf("Table3 has %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Model > rows[i-1].Model {
			t.Errorf("model column not non-increasing at repeats=%d", rows[i].Repeats)
		}
		if rows[i].Empirical > rows[i-1].Empirical {
			t.Errorf("empirical column not non-increasing at repeats=%d", rows[i].Repeats)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.Model < 8 || first.Empirical < 8 {
		t.Errorf("repeats=1 optima (%d, %d) should saturate DDR", first.Model, first.Empirical)
	}
	if last.Model > 2 || last.Empirical > 2 {
		t.Errorf("repeats=64 optima (%d, %d) should be 1-2", last.Model, last.Empirical)
	}
	if s := Table3Report(rows).ASCII(); !strings.Contains(s, "Empirical") {
		t.Error("Table 3 report missing header")
	}
}

func TestBenderCorroborationShape(t *testing.T) {
	r := Bender()
	if r.GainOverFlat < 1.1 || r.GainOverFlat > 1.6 {
		t.Errorf("gain over flat = %.2f, expected ~1.3", r.GainOverFlat)
	}
	if r.BeatsCacheMode {
		t.Error("basic chunked should not beat GNU-cache (the paper's finding)")
	}
}

func TestSortFacade(t *testing.T) {
	if s := Sort(mlmsort.MLMSort, 2_000_000_000, workload.Random); s <= 0 {
		t.Error("Sort returned non-positive time")
	}
	xs := workload.Generate(workload.Random, 10_000, 1)
	if err := SortReal(mlmsort.MLMImplicit, xs, 4); err != nil {
		t.Fatal(err)
	}
	if !workload.IsSorted(xs) {
		t.Error("SortReal output not sorted")
	}
}

func TestPaperSizes(t *testing.T) {
	s := PaperSizes()
	if len(s) != 3 || s[0] != 2_000_000_000 || s[2] != 6_000_000_000 {
		t.Errorf("PaperSizes = %v", s)
	}
	if MCDRAMCapacity() != 16*units.GiB {
		t.Errorf("MCDRAMCapacity = %v", MCDRAMCapacity())
	}
}
