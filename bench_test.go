package knlmlm

// The benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation, plus ablations for the design choices DESIGN.md
// calls out. Each benchmark regenerates its experiment's data on the
// simulated KNL and reports the headline quantity as custom metrics, so
// `go test -bench . -benchmem` doubles as the reproduction driver.
//
// Absolute wall time of these benchmarks measures the *simulator*, not the
// paper's hardware; the paper-comparable quantities are the reported
// custom metrics (simulated seconds, speedups, optima).

import (
	"os"
	"testing"

	"knlmlm/internal/cachesim"
	"knlmlm/internal/mem"
	"knlmlm/internal/mergebench"
	"knlmlm/internal/mlmsort"
	"knlmlm/internal/model"
	"knlmlm/internal/noc"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/twolevel"
	"knlmlm/internal/workload"
)

// BenchmarkTable1SortGrid regenerates every Table 1 cell and reports the
// grand mean of simulated seconds.
func BenchmarkTable1SortGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table1(1)
		var sum float64
		for _, r := range rows {
			sum += r.Summary.Mean
		}
		b.ReportMetric(sum/float64(len(rows)), "simsec/cell")
	}
}

// BenchmarkFig6aSpeedupsRandom reports the geometric-mean speedup over
// GNU-flat on random inputs (Figure 6a).
func BenchmarkFig6aSpeedupsRandom(b *testing.B) {
	benchmarkFig6(b, workload.Random)
}

// BenchmarkFig6bSpeedupsReverse reports the same for reverse inputs
// (Figure 6b).
func BenchmarkFig6bSpeedupsReverse(b *testing.B) {
	benchmarkFig6(b, workload.Reverse)
}

func benchmarkFig6(b *testing.B, order workload.Order) {
	for i := 0; i < b.N; i++ {
		rows := Fig6(Table1(1), order)
		best := 0.0
		for _, r := range rows {
			if r.Speedup > best {
				best = r.Speedup
			}
		}
		b.ReportMetric(best, "best-speedup")
	}
}

// BenchmarkFig7ChunkSize sweeps chunk sizes at 6 G elements and reports the
// implicit-mode improvement from the smallest to the largest chunk.
func BenchmarkFig7ChunkSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := Fig7()
		var first, last float64
		for _, p := range points {
			if p.Algorithm == mlmsort.MLMImplicit && p.Feasible {
				if first == 0 {
					first = p.Seconds
				}
				last = p.Seconds
			}
		}
		b.ReportMetric(first/last, "implicit-chunk-gain")
	}
}

// BenchmarkTable2Calibration runs the STREAM calibration and reports the
// measured MCDRAM:DDR bandwidth ratio (the paper's 400:90).
func BenchmarkTable2Calibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cal := Table2()
		b.ReportMetric(float64(cal.MCDRAMMax)/float64(cal.DDRMax), "mcdram:ddr")
	}
}

// BenchmarkFig8aModelSweep evaluates the analytic model across the Figure
// 8a grid and reports the predicted time at (repeats=1, copy=10) — the
// paper's DDR-saturating optimum.
func BenchmarkFig8aModelSweep(b *testing.B) {
	p := model.PaperTable2()
	for i := 0; i < b.N; i++ {
		pts := Fig8a()
		_ = pts
		pred := p.Evaluate(model.SymmetricPools(10, 256), 1)
		b.ReportMetric(pred.TTotal.Seconds(), "model-simsec")
	}
}

// BenchmarkFig8bEmpiricalSweep runs the simulated merge-benchmark sweep and
// reports the best time at repeats=1.
func BenchmarkFig8bEmpiricalSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := Fig8b()
		best := -1.0
		for _, p := range pts {
			if p.Repeats == 1 && (best < 0 || p.Seconds < best) {
				best = p.Seconds
			}
		}
		b.ReportMetric(best, "best-simsec")
	}
}

// BenchmarkTable3OptimalCopyThreads regenerates Table 3 and reports the
// model-vs-empirical agreement (mean absolute difference in copy threads).
func BenchmarkTable3OptimalCopyThreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table3()
		var dev float64
		for _, r := range rows {
			d := float64(r.Model - r.Empirical)
			if d < 0 {
				d = -d
			}
			dev += d
		}
		b.ReportMetric(dev/float64(len(rows)), "mean-abs-dev")
	}
}

// BenchmarkBenderCorroboration reruns the Section 4 corroboration and
// reports the basic chunked algorithm's gain over GNU-flat (~1.3x).
func BenchmarkBenderCorroboration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Bender()
		b.ReportMetric(r.GainOverFlat, "gain-vs-flat")
	}
}

// --- Ablations (design choices called out in DESIGN.md) -----------------

// BenchmarkAblationBarrierVsAsync quantifies what the paper's step-barrier
// schedule costs versus the event-driven pipeline it leaves as future work.
func BenchmarkAblationBarrierVsAsync(b *testing.B) {
	m := NewPaperMachine(mem.Flat)
	cfg := mergebench.PaperConfig(8, 4)
	for i := 0; i < b.N; i++ {
		bar := mergebench.Simulate(m, cfg).Time.Seconds()
		asy := mergebench.SimulateAsync(m, cfg, 3).Time.Seconds()
		b.ReportMetric(bar/asy, "barrier-overhead")
	}
}

// BenchmarkAblationCopyPriority quantifies the Eq. 5 copy-priority
// assumption: the same pipeline with fair (no-priority) copy pools.
func BenchmarkAblationCopyPriority(b *testing.B) {
	m := NewPaperMachine(mem.Flat)
	for i := 0; i < b.N; i++ {
		cfg := mergebench.PaperConfig(8, 4)
		withPri := mergebench.Simulate(m, cfg).Time.Seconds()
		p := cfg.Pipeline(m)
		p.CopyIn.Priority = 0
		p.CopyOut.Priority = 0
		without := p.SimulateBarrier(m.System()).TotalTime().Seconds()
		b.ReportMetric(without/withPri, "fair-vs-priority")
	}
}

// BenchmarkAblationMegachunkSize sweeps MLM-sort megachunk sizes at 4 G
// elements — the Section 4.2 "chunk size should be as large as near memory
// allows" claim — and reports the large:small chunk gain.
func BenchmarkAblationMegachunkSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := mlmsort.PaperSortConfig(4_000_000_000, workload.Random)
		small.MegachunkElements = 125_000_000
		large := mlmsort.PaperSortConfig(4_000_000_000, workload.Random)
		large.MegachunkElements = 2_000_000_000
		ts := mlmsort.Simulate(mlmsort.MLMSort, small).Time.Seconds()
		tl := mlmsort.Simulate(mlmsort.MLMSort, large).Time.Seconds()
		b.ReportMetric(ts/tl, "large-chunk-gain")
	}
}

// BenchmarkAblationFutureMCDRAM runs the paper's future-technology what-if:
// MLM-sort with 2x MCDRAM bandwidth.
func BenchmarkAblationFutureMCDRAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := mlmsort.PaperSortConfig(4_000_000_000, workload.Random)
		base := mlmsort.Simulate(mlmsort.MLMSort, cfg).Time.Seconds()

		fast := mlmsort.MLMSort.Machine().Config()
		fast.Memory.MCDRAMBandwidth = 2 * fast.Memory.MCDRAMBandwidth
		m, err := newMachine(fast)
		if err != nil {
			b.Fatal(err)
		}
		faster := mlmsort.SimulateOn(m, mlmsort.MLMSort, cfg).Time.Seconds()
		b.ReportMetric(base/faster, "2x-mcdram-gain")
	}
}

// BenchmarkAblationHybridVsFlat reruns the paper's prose claim that hybrid
// mode matches flat at equal chunk sizes.
func BenchmarkAblationHybridVsFlat(b *testing.B) {
	cfg := mlmsort.PaperSortConfig(4_000_000_000, workload.Random)
	cfg.MegachunkElements = 1_000_000_000
	for i := 0; i < b.N; i++ {
		flat := mlmsort.Simulate(mlmsort.MLMSort, cfg).Time.Seconds()
		hybrid := mlmsort.Simulate(mlmsort.MLMHybrid, cfg).Time.Seconds()
		b.ReportMetric(hybrid/flat, "hybrid:flat")
	}
}

// BenchmarkExtensionPreferredPolicy prices the Li et al. numactl-preferred
// configuration against GNU-flat and MLM-sort.
func BenchmarkExtensionPreferredPolicy(b *testing.B) {
	cfg := mlmsort.PaperSortConfig(4_000_000_000, workload.Random)
	for i := 0; i < b.N; i++ {
		flat := mlmsort.Simulate(mlmsort.GNUFlat, cfg).Time.Seconds()
		pref := mlmsort.Simulate(mlmsort.GNUPreferred, cfg).Time.Seconds()
		b.ReportMetric(flat/pref, "preferred-gain")
	}
}

// BenchmarkExtensionTwoLevelNVM runs the paper's future-work third level:
// doubly-chunked staging from NVM, reported as speedup over direct NVM
// streaming.
func BenchmarkExtensionTwoLevelNVM(b *testing.B) {
	cfg := twolevel.DefaultConfig(256 << 30)
	for i := 0; i < b.N; i++ {
		res, err := cfg.Simulate()
		if err != nil {
			b.Fatal(err)
		}
		base, err := cfg.SingleLevelBaseline()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(base.Seconds()/res.Time.Seconds(), "vs-direct-nvm")
	}
}

// BenchmarkAblationDirectMappedThrash quantifies the direct-mapped
// pathology the paper blames for cache-mode weakness: conflict-stream hit
// ratio of the real KNL geometry vs a hypothetical 4-way MCDRAM cache.
func BenchmarkAblationDirectMappedThrash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		direct, assoc := cachesim.ConflictProbe(1<<20, 64, 4, 1<<18)
		b.ReportMetric(assoc-direct, "assoc-advantage")
	}
}

// BenchmarkAblationMeshCeiling verifies the mesh-is-not-the-bottleneck
// assumption behind the paper's model (and our arbiter): headroom factor of
// the on-die mesh's bandwidth ceiling over the 490 GB/s the memory devices
// can serve.
func BenchmarkAblationMeshCeiling(b *testing.B) {
	m := noc.KNLMesh()
	for i := 0; i < b.N; i++ {
		ceiling := m.Ceiling(400.0 / 490.0)
		b.ReportMetric(float64(ceiling)/490e9, "mesh-headroom")
	}
}

// --- Raw substrate benchmarks (real code, real data) ---------------------

// BenchmarkRealSerialSort measures the host throughput of the serial
// adaptive introsort (the psort substrate).
func BenchmarkRealSerialSort(b *testing.B) {
	xs := workload.Generate(workload.Random, 1<<20, 1)
	buf := make([]int64, len(xs))
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, xs)
		mustSort(b, mlmsort.GNUFlat, buf, 1)
	}
}

// BenchmarkRealMLMSort measures the host throughput of the full MLM-sort
// data flow.
func BenchmarkRealMLMSort(b *testing.B) {
	xs := workload.Generate(workload.Random, 1<<20, 1)
	buf := make([]int64, len(xs))
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, xs)
		mustSort(b, mlmsort.MLMSort, buf, 4)
	}
}

func mustSort(b *testing.B, a mlmsort.Algorithm, xs []int64, threads int) {
	b.Helper()
	if err := mlmsort.RunReal(a, xs, threads, 0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRealMergeOverlap runs the real triple-buffered merge pipeline
// under telemetry and reports its copy↔compute overlap efficiency and
// pipeline efficiency (how close T_total comes to Eq. 1's
// max(T_copy, T_comp)) as custom metrics — the perf-trajectory numbers
// this repository tracks from this PR onward. With BENCH_JSON=<path> in
// the environment, the last iteration's record is written as a
// BENCH_*.json file.
func BenchmarkRealMergeOverlap(b *testing.B) {
	const n, chunkLen, repeats, buffers = 1 << 20, 1 << 14, 4, 3
	src := workload.Generate(workload.Random, n, 1)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	var last telemetry.Analysis
	for i := 0; i < b.N; i++ {
		rec := telemetry.NewRecorder()
		if _, err := mergebench.RunRealObserved(src, chunkLen, repeats, buffers, rec); err != nil {
			b.Fatal(err)
		}
		last = telemetry.Analyze(rec.Spans())
	}
	b.ReportMetric(last.OverlapEfficiency, "overlap-eff")
	b.ReportMetric(last.PipelineEfficiency, "pipeline-eff")
	if path := os.Getenv("BENCH_JSON"); path != "" {
		rec := telemetry.NewBenchRecord("BenchmarkRealMergeOverlap")
		rec.Config["n"] = n
		rec.Config["chunk_len"] = chunkLen
		rec.Config["repeats"] = repeats
		rec.Config["buffers"] = buffers
		rec.FromAnalysis(last)
		if err := rec.WriteFile(path); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote bench record to %s", path)
	}
}

// BenchmarkTelemetryOverheadPerChunk prices one observed chunk against an
// unobserved one through the exec pipeline (companion to the exec-level
// BenchmarkRunNoTelemetry/BenchmarkRunWithTelemetry pair; here with the
// merge kernel, so the overhead is shown relative to real work).
func BenchmarkTelemetryOverheadPerChunk(b *testing.B) {
	const n, chunkLen = 1 << 18, 1 << 13
	src := workload.Generate(workload.Random, n, 1)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := telemetry.NewRecorder()
		if _, err := mergebench.RunRealObserved(src, chunkLen, 1, 3, rec); err != nil {
			b.Fatal(err)
		}
	}
}
