// Command mlmserve runs the sort service: the MCDRAM-budget scheduler
// (internal/sched) behind the HTTP/JSON front end (internal/serve).
//
// Examples:
//
//	mlmserve -addr :8080 -budget-mb 64 -workers 4
//	mlmserve -addr 127.0.0.1:0 -budget-mb 16 -autotune -chaos -chaos-seed 7
//	mlmserve -addr :8080 -budget-mb 16 -ddr-budget-mb 1 -disk-budget-mb 256
//
// With -ddr-budget-mb and -disk-budget-mb both set, jobs whose working
// set exceeds the DDR budget are admitted into the spill class instead
// of being rejected: phase 1 spills sorted runs to disk (under
// -spill-dir, charged against a separate disk ledger) and the result
// streams to the client through a final k-way merge without ever
// materializing in memory. Run files are deleted when the result is
// downloaded, the job is canceled or evicted, or the server drains.
//
// The chosen listen address is printed on one line ("mlmserve listening
// on ...") so wrappers binding port 0 can discover the port. SIGINT or
// SIGTERM triggers a graceful stop: /healthz flips to 503, admissions are
// refused with 429, every queued and running job is drained, then the
// HTTP listener shuts down.
//
// With -chaos, every job pipeline runs under a seeded fault-injection
// plan (stage errors/panics/latency, MCDRAM allocation failures) — the
// serving analog of cmd/chaos — so resilience can be exercised against
// live traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"knlmlm/internal/exec"
	"knlmlm/internal/fault"
	"knlmlm/internal/mem"
	"knlmlm/internal/memkind"
	"knlmlm/internal/sched"
	"knlmlm/internal/serve"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/units"
)

// options collects the flag set run() serves from.
type options struct {
	addr         string
	budgetMB     int64
	ddrMB        int64
	diskMB       int64
	spillDir     string
	workers      int
	queueLimit   int
	threads      int
	batchElems   int
	retain       int
	decodeGate   int
	chunkElems   int
	frameElems   int
	keyPool      bool
	autotune     bool
	chaos        bool
	chaosSeed    int64
	simChunkMS   int
	drainTimeout time.Duration
	logLevel     string
	logJSON      bool
	flightCap    int
	brownout     bool
	criticalPrio int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	flag.Int64Var(&o.budgetMB, "budget-mb", 64, "MCDRAM staging budget leased to jobs, in MiB")
	flag.Int64Var(&o.ddrMB, "ddr-budget-mb", 0, "DDR working-set budget, in MiB (0 = uncapped; over-budget jobs spill when a disk budget is set)")
	flag.Int64Var(&o.diskMB, "disk-budget-mb", 0, "disk budget for spill run files, in MiB (0 disables the spill class)")
	flag.StringVar(&o.spillDir, "spill-dir", "", "parent directory for spill run files (empty = OS temp dir)")
	flag.IntVar(&o.workers, "workers", 0, "concurrent pipelines (0 = scheduler default)")
	flag.IntVar(&o.queueLimit, "queue", 0, "admission queue bound (0 = scheduler default)")
	flag.IntVar(&o.threads, "threads", 0, "thread budget fair-shared across staged jobs (0 = GOMAXPROCS)")
	flag.IntVar(&o.batchElems, "batch-max-elems", 0, "batchable-job element threshold; jobs at most this large ride a shared pass (0 = budget-derived default, 1 effectively disables batching)")
	flag.IntVar(&o.retain, "retain", 4096, "terminal jobs retained for status/result lookup")
	flag.IntVar(&o.decodeGate, "decode-gate", 0, "concurrent submit-body decodes; deadlined requests past the gate get 429 ingest-busy (0 = max(2, GOMAXPROCS))")
	flag.IntVar(&o.chunkElems, "result-chunk-elems", 0, "JSON result download granularity, elements per chunked write (0 = 8192)")
	flag.IntVar(&o.frameElems, "wire-frame-elems", 0, "binary result download granularity, elements per wire frame (0 = 32768)")
	flag.BoolVar(&o.keyPool, "key-pool", true, "recycle upload key buffers through a slice pool: binary submits decode into pooled buffers, retention eviction returns them")
	flag.BoolVar(&o.autotune, "autotune", false, "measure per-thread rates on staged jobs and feed them to the fair-share solver")
	flag.BoolVar(&o.chaos, "chaos", false, "run every job pipeline under a seeded fault-injection plan")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 1, "chaos plan seed (with -chaos)")
	flag.IntVar(&o.simChunkMS, "sim-chunk-ms", 0, "add a fixed sleep to every chunk's Compute stage, in ms: makes per-node service rate a configured quantity so cluster scale-out is measurable on one box (0 = off)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "graceful-drain bound on shutdown")
	flag.StringVar(&o.logLevel, "log-level", "info", "structured log level: debug, info, warn, error, or off")
	flag.BoolVar(&o.logJSON, "log-json", false, "emit structured logs as JSON (default logfmt-style text)")
	flag.IntVar(&o.flightCap, "flight-recorder", 0, "job traces retained in the flight recorder ring (0 = default)")
	flag.BoolVar(&o.brownout, "brownout", true, "enable the overload brownout controller (shed spill class, shrink batches, critical-only admission)")
	flag.IntVar(&o.criticalPrio, "critical-priority", 0, "minimum job priority admitted at the critical-only brownout level (0 = default 1)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "mlmserve:", err)
		os.Exit(1)
	}
}

// buildLogger maps -log-level/-log-json onto a slog.Logger on stderr
// (stdout stays machine-parsable: the listen line and drain summary).
// Level "off" returns nil, which both layers treat as logging disabled.
func buildLogger(level string, asJSON bool) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off", "none":
		return nil, nil
	default:
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn, error, or off", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	if asJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
}

func run(o options) error {
	if o.budgetMB <= 0 {
		return fmt.Errorf("-budget-mb must be positive")
	}
	if o.ddrMB < 0 || o.diskMB < 0 {
		return fmt.Errorf("-ddr-budget-mb and -disk-budget-mb must be non-negative")
	}
	budget := units.Bytes(o.budgetMB) * units.MiB
	logger, err := buildLogger(o.logLevel, o.logJSON)
	if err != nil {
		return err
	}

	reg := telemetry.NewRegistry()
	cfg := sched.Config{
		MCDRAMBudget:      budget,
		DDRBudget:         units.Bytes(o.ddrMB) * units.MiB,
		DiskBudget:        units.Bytes(o.diskMB) * units.MiB,
		SpillDir:          o.spillDir,
		Workers:           o.workers,
		QueueLimit:        o.queueLimit,
		TotalThreads:      o.threads,
		BatchMaxElems:     o.batchElems,
		RetainJobs:        o.retain,
		Registry:          reg,
		Resilience:        telemetry.NewResilience(reg),
		Autotune:          o.autotune,
		FlightRecorderCap: o.flightCap,
		Logger:            logger,
		Brownout: sched.BrownoutConfig{
			Disable:          !o.brownout,
			CriticalPriority: o.criticalPrio,
		},
	}
	if o.keyPool {
		// One pool closes the upload loop: serve decodes binary submits
		// into it, the scheduler recycles buffers at retention eviction.
		cfg.KeyPool = mem.NewSlicePool()
	}
	if o.chaos {
		plan := fault.NewPlan(o.chaosSeed, budget)
		inj := plan.Injector()
		cfg.Heap = memkind.NewHeap(plan.HBWCapacity, units.GiB)
		cfg.AllocFaults = inj
		cfg.Wrap = inj.Wrap
		cfg.Retry = plan.Retry
		cfg.ChunkTimeout = plan.ChunkTimeout
		// Spill-class jobs run their run-file IO under the same plan.
		cfg.IOFaults = inj
		fmt.Printf("mlmserve chaos plan seed=%d: %s\n", o.chaosSeed, plan)
	}
	if o.simChunkMS > 0 {
		// Benchmark aid for single-box cluster experiments: a sleeping
		// Compute stage releases the CPU, so N colocated nodes really do
		// serve at N times one node's configured rate instead of fighting
		// over the same cores. Composes under the chaos wrap so injected
		// faults still see the slowed pipeline.
		d := time.Duration(o.simChunkMS) * time.Millisecond
		sim := func(s exec.Stages) exec.Stages {
			inner := s.Compute
			s.Compute = func(i int, buf []int64) error {
				time.Sleep(d)
				if inner != nil {
					return inner(i, buf)
				}
				return nil
			}
			return s
		}
		if prev := cfg.Wrap; prev != nil {
			cfg.Wrap = func(s exec.Stages) exec.Stages { return prev(sim(s)) }
		} else {
			cfg.Wrap = sim
		}
	}

	sc, err := sched.New(cfg)
	if err != nil {
		return err
	}
	defer sc.Close()
	if rec := sc.SpillRecovery(); rec.Dirs > 0 {
		fmt.Printf("mlmserve: reclaimed %d orphaned spill dir(s) from a previous crash — %d run files, %d bytes (%d sealed)\n",
			rec.Dirs, rec.Runs, rec.Bytes, rec.SealedRuns)
	}

	srv, err := serve.New(serve.Config{
		Scheduler:         sc,
		Registry:          reg,
		Logger:            logger,
		DecodeConcurrency: o.decodeGate,
		ResultChunkElems:  o.chunkElems,
		WireFrameElems:    o.frameElems,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if cfg.DiskBudget > 0 {
		fmt.Printf("mlmserve listening on %s (budget %v, ddr %v, disk %v, rate %v)\n",
			ln.Addr(), budget, cfg.DDRBudget, cfg.DiskBudget, sc.DiskRate().Read)
	} else {
		fmt.Printf("mlmserve listening on %s (budget %v)\n", ln.Addr(), budget)
	}

	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("mlmserve: %v — draining\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mlmserve: drain:", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	snap := sc.Snapshot()
	fmt.Printf("mlmserve: drained — %d jobs submitted, %d batches, high water %v\n",
		snap.Submitted, snap.Batches, snap.HighWaterBytes)
	if snap.DiskBudgetBytes > 0 {
		fmt.Printf("mlmserve: spill — disk high water %v / %v, leased %v at exit\n",
			sc.DiskBudget().HighWater(), snap.DiskBudgetBytes, snap.DiskLeasedBytes)
	}
	return nil
}
