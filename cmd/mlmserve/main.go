// Command mlmserve runs the sort service: the MCDRAM-budget scheduler
// (internal/sched) behind the HTTP/JSON front end (internal/serve).
//
// Examples:
//
//	mlmserve -addr :8080 -budget-mb 64 -workers 4
//	mlmserve -addr 127.0.0.1:0 -budget-mb 16 -autotune -chaos -chaos-seed 7
//
// The chosen listen address is printed on one line ("mlmserve listening
// on ...") so wrappers binding port 0 can discover the port. SIGINT or
// SIGTERM triggers a graceful stop: /healthz flips to 503, admissions are
// refused with 429, every queued and running job is drained, then the
// HTTP listener shuts down.
//
// With -chaos, every job pipeline runs under a seeded fault-injection
// plan (stage errors/panics/latency, MCDRAM allocation failures) — the
// serving analog of cmd/chaos — so resilience can be exercised against
// live traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"knlmlm/internal/fault"
	"knlmlm/internal/memkind"
	"knlmlm/internal/sched"
	"knlmlm/internal/serve"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/units"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	budgetMB := flag.Int64("budget-mb", 64, "MCDRAM staging budget leased to jobs, in MiB")
	workers := flag.Int("workers", 0, "concurrent pipelines (0 = scheduler default)")
	queueLimit := flag.Int("queue", 0, "admission queue bound (0 = scheduler default)")
	threads := flag.Int("threads", 0, "thread budget fair-shared across staged jobs (0 = GOMAXPROCS)")
	retain := flag.Int("retain", 4096, "terminal jobs retained for status/result lookup")
	autotune := flag.Bool("autotune", false, "measure per-thread rates on staged jobs and feed them to the fair-share solver")
	chaos := flag.Bool("chaos", false, "run every job pipeline under a seeded fault-injection plan")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos plan seed (with -chaos)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on shutdown")
	flag.Parse()

	if err := run(*addr, *budgetMB, *workers, *queueLimit, *threads, *retain,
		*autotune, *chaos, *chaosSeed, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "mlmserve:", err)
		os.Exit(1)
	}
}

func run(addr string, budgetMB int64, workers, queueLimit, threads, retain int,
	autotune, chaos bool, chaosSeed int64, drainTimeout time.Duration) error {
	if budgetMB <= 0 {
		return fmt.Errorf("-budget-mb must be positive")
	}
	budget := units.Bytes(budgetMB) * units.MiB

	reg := telemetry.NewRegistry()
	cfg := sched.Config{
		MCDRAMBudget: budget,
		Workers:      workers,
		QueueLimit:   queueLimit,
		TotalThreads: threads,
		RetainJobs:   retain,
		Registry:     reg,
		Resilience:   telemetry.NewResilience(reg),
		Autotune:     autotune,
	}
	if chaos {
		plan := fault.NewPlan(chaosSeed, budget)
		inj := plan.Injector()
		cfg.Heap = memkind.NewHeap(plan.HBWCapacity, units.GiB)
		cfg.AllocFaults = inj
		cfg.Wrap = inj.Wrap
		cfg.Retry = plan.Retry
		cfg.ChunkTimeout = plan.ChunkTimeout
		fmt.Printf("mlmserve chaos plan seed=%d: %s\n", chaosSeed, plan)
	}

	sc, err := sched.New(cfg)
	if err != nil {
		return err
	}
	defer sc.Close()

	srv, err := serve.New(serve.Config{Scheduler: sc, Registry: reg})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("mlmserve listening on %s (budget %v)\n", ln.Addr(), budget)

	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("mlmserve: %v — draining\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mlmserve: drain:", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	snap := sc.Snapshot()
	fmt.Printf("mlmserve: drained — %d jobs submitted, %d batches, high water %v\n",
		snap.Submitted, snap.Batches, snap.HighWaterBytes)
	return nil
}
