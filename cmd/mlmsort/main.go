// Command mlmsort runs one sort configuration, either on the simulated KNL
// (default; paper-scale sizes allowed) or for real on host data (-real;
// use modest sizes).
//
// Examples:
//
//	mlmsort -alg MLM-sort -n 2000000000 -order random
//	mlmsort -alg MLM-implicit -n 6000000000 -order reverse -chunk 1500000000
//	mlmsort -real -alg MLM-sort -n 1000000 -threads 8
//	mlmsort -real -alg MLM-sort -n 4000000 -trace out.json -metrics
//	mlmsort -real -alg MLM-sort -n 4000000 -autotune -cpuprofile cpu.pprof
//	mlmsort -chaos -chaos-seed 7 -n 400000 -threads 4
//	mlmsort -spill -n 4000000 -threads 8 -spill-budget-mb 64
//
// With -spill, the real run sorts out-of-core through all three levels:
// sorted megachunk runs are written to disk (under -spill-dir, capped at
// -spill-budget-mb) instead of accumulating in DDR, and a final k-way
// streaming merge produces the output. The run first measures the spill
// directory's sequential disk bandwidth (tune.MeasureDiskRate) and uses
// it to provision the merge's read-ahead width via the Eq. 1–5 solve
// with disk as the slow tier. -spill composes with -chaos (run-file
// write/read faults join the plan) and -metrics (spill_* families).
//
// With -chaos, the real run executes under a randomized, seeded fault
// plan (stage errors/panics/latency, MCDRAM allocation failures, an
// undersized staging heap) and prints the injection/retry/degradation
// tally; see cmd/chaos for the multi-seed soak harness.
//
// With -autotune, a staged real run measures per-thread copy and compute
// rates over its first megachunks, re-solves the Eq. 1–5 copy/compute
// split with the measured rates, and re-provisions the pipeline mid-run.
// -cpuprofile/-memprofile write standard pprof profiles of the whole run.
//
// With -trace and/or -metrics, the run is captured by the telemetry
// subsystem: -trace writes a Chrome trace-event JSON (open in Perfetto or
// chrome://tracing), -metrics prints Prometheus-format metrics, and real
// runs additionally print the occupancy/stall report and the measured-vs-
// model (Section 3.2, Eq. 1–5) drift table.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"knlmlm/internal/fault"
	"knlmlm/internal/memkind"
	"knlmlm/internal/mlmsort"
	"knlmlm/internal/model"
	"knlmlm/internal/prof"
	"knlmlm/internal/spill"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/tune"
	"knlmlm/internal/units"
	"knlmlm/internal/workload"
)

func parseAlg(s string) (mlmsort.Algorithm, error) {
	for _, a := range append(mlmsort.Algorithms(), mlmsort.BasicChunked) {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

// driftPrediction maps the real run onto the Section 3.2 model: Table 2
// rates, B = the array's bytes, one copy-in and one copy-out stream (the
// staged variants copy serially on the driver), threads computing, one
// pass. Absolute seconds model a KNL, not this host — the drift report's
// scale-free rows are the meaningful comparison.
func driftPrediction(n int64, threads int) model.Prediction {
	p := model.PaperTable2()
	p.BCopy = units.BytesForElements(n)
	return p.Evaluate(model.Pools{In: 1, Out: 1, Comp: threads}, 1)
}

func main() {
	algName := flag.String("alg", "MLM-sort", "algorithm: GNU-flat, GNU-cache, MLM-ddr, MLM-sort, MLM-implicit, Basic-chunked")
	n := flag.Int64("n", 2_000_000_000, "element count")
	orderName := flag.String("order", "random", "input order (random, reverse, sorted, nearly-sorted, organ-pipe, few-unique)")
	threads := flag.Int("threads", 256, "thread budget")
	chunk := flag.Int64("chunk", 0, "megachunk elements (0 = paper default)")
	real := flag.Bool("real", false, "execute the real data flow on the host instead of simulating")
	repeats := flag.Int("runs", 1, "simulated repetitions (with the run-to-run noise model)")
	verbose := flag.Bool("v", false, "print the phase trace")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	metrics := flag.Bool("metrics", false, "print Prometheus-format metrics for the run")
	chaos := flag.Bool("chaos", false, "run the real sort under a randomized fault-injection plan (implies -real)")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos plan seed (with -chaos)")
	autotune := flag.Bool("autotune", false, "re-provision copy/compute widths mid-run from measured rates (staged variants, with -real)")
	tuneThreads := flag.Int("tune-threads", 0, "thread budget for -autotune (0 = threads+2, the run's initial split)")
	spillFlag := flag.Bool("spill", false, "sort out-of-core: spill sorted runs to disk, k-way merge them back (implies -real)")
	spillDir := flag.String("spill-dir", "", "parent directory for spill run files (with -spill; empty = OS temp dir)")
	spillBudgetMB := flag.Int64("spill-budget-mb", 0, "disk budget for run files in MiB (with -spill; 0 = uncapped)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if *chaos || *spillFlag {
		*real = true
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mlmsort: %v\n", err)
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "mlmsort: %v\n", err)
		}
	}()

	alg, err := parseAlg(*algName)
	if err != nil {
		fail(err)
	}
	order, err := workload.ParseOrder(*orderName)
	if err != nil {
		fail(err)
	}
	telemetryOn := *tracePath != "" || *metrics

	if *real {
		if *n > 1<<28 {
			fail(fmt.Errorf("real mode sorts host data; use -n <= %d", 1<<28))
		}
		xs := workload.Generate(order, int(*n), 1)
		var rec *telemetry.Recorder
		if telemetryOn {
			rec = telemetry.NewRecorder()
		}
		opts := mlmsort.RealOptions{Recorder: rec}
		// One registry for every family the run emits — autotune_*,
		// faults_*/pipeline_*, and the span-derived metrics — so the
		// -autotune, -chaos, and -metrics flags compose: a single scrape
		// sees all of them side by side.
		reg := telemetry.NewRegistry()
		inj, res, plan := wireReal(&opts, reg, *autotune, *tuneThreads, *chaos, *chaosSeed, *n)
		if *chaos {
			fmt.Println(plan)
		}
		var (
			stats  mlmsort.RealStats
			xstats mlmsort.ExternalStats
			dr     tune.DiskRate
		)
		start := time.Now()
		if *spillFlag {
			xopts := mlmsort.ExternalOptions{
				RealOptions: opts,
				SpillDir:    *spillDir,
				DiskBudget:  *spillBudgetMB << 20,
				Registry:    reg,
				// No measured host merge rate exists before the run, so
				// Table 2's per-thread merge rate stands in: the ratio to
				// the measured disk rate is what sizes the read-ahead.
				MergeRate: model.PaperTable2().SComp,
			}
			dr, err = tune.MeasureDiskRate(*spillDir, 8<<20)
			if err != nil {
				fail(err)
			}
			dr.Publish(reg)
			xopts.DiskRate = dr.Read
			if *chaos && inj != nil {
				// A chaos run owns its store so the plan's run-file
				// write/read faults reach the spill tier.
				st, serr := spill.NewStore(spill.Config{
					Dir:      *spillDir,
					MaxBytes: xopts.DiskBudget,
					Faults:   inj,
					Registry: reg,
				})
				if serr != nil {
					fail(serr)
				}
				defer st.Close()
				xopts.Store = st
			}
			xstats, err = mlmsort.RunRealExternal(context.Background(), alg, xs, *threads, int(*chunk), xopts)
			stats = xstats.RealStats
		} else {
			stats, err = mlmsort.RunRealResilient(context.Background(), alg, xs, *threads, int(*chunk), opts)
		}
		if err != nil {
			fail(err)
		}
		wall := time.Since(start)
		if !workload.IsSorted(xs) {
			fail(fmt.Errorf("output not sorted — algorithm bug"))
		}
		fmt.Printf("%s sorted %d %s elements on the host in %v (verified)\n", alg, *n, order, wall)
		if *spillFlag {
			fmt.Printf("spill: %d runs, %v spilled, merge read-ahead %d (disk write %v, read %v)\n",
				xstats.Runs, units.Bytes(xstats.SpilledBytes), xstats.ReadAhead, dr.Write, dr.Read)
		}
		if *autotune {
			if stats.Retunes > 0 {
				p := stats.TunedPools
				fmt.Printf("autotune: re-provisioned to copy-in=%d copy-out=%d compute=%d after warmup\n",
					p.In, p.Out, p.Comp)
			} else {
				fmt.Println("autotune: no re-provisioning (variant has no copy pools or warmup never completed)")
			}
		}
		if *chaos {
			fmt.Printf("chaos: %v; retries=%d degradations=%d (%d/%d megachunks staged)\n",
				inj, res.Retries(), res.Degradations(), stats.Staged, stats.Megachunks)
		}
		if telemetryOn {
			emitRealTelemetry(rec, reg, *tracePath, *metrics, *n, *threads, alg.String())
		}
		return
	}

	cfg := mlmsort.PaperSortConfig(*n, order)
	cfg.Threads = *threads
	cfg.MegachunkElements = *chunk
	if *repeats > 1 {
		if telemetryOn {
			fmt.Fprintln(os.Stderr, "mlmsort: -trace/-metrics apply to single runs; ignoring with -runs > 1")
		}
		s := mlmsort.Repeated(alg, cfg, *repeats, 1)
		fmt.Printf("%s  n=%d  %s: %.2fs ± %.4fs (n=%d)\n", alg, *n, order, s.Mean, s.StdDev, s.N)
		return
	}
	res := mlmsort.Simulate(alg, cfg)
	fmt.Printf("%s  n=%d  %s: %.2fs (simulated)\n", alg, *n, order, res.Time.Seconds())
	if *verbose {
		fmt.Print(res.Trace.String())
	}
	if *tracePath != "" {
		var ct telemetry.ChromeTrace
		ct.AddProcessName(1, fmt.Sprintf("%s (simulated)", alg))
		ct.AddSimTrace(1, res.Trace)
		if err := ct.WriteFile(*tracePath); err != nil {
			fail(err)
		}
		fmt.Printf("wrote simulated Chrome trace to %s\n", *tracePath)
	}
	if *metrics {
		reg := telemetry.NewRegistry()
		telemetry.Publish(reg, telemetry.SimSpans(res.Trace))
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
	}
}

// wireReal attaches the -autotune and -chaos machinery to one real-run
// option set, publishing every family into the same registry so the two
// flags compose with -metrics: one scrape sees autotune_* next to
// faults_* and pipeline_* counters instead of each subsystem keeping a
// private, discarded registry.
func wireReal(opts *mlmsort.RealOptions, reg *telemetry.Registry,
	autotune bool, tuneThreads int, chaos bool, chaosSeed, n int64) (*fault.Injector, *telemetry.Resilience, fault.Plan) {
	var inj *fault.Injector
	var res *telemetry.Resilience
	var plan fault.Plan
	if autotune {
		opts.Autotune = &mlmsort.AutotuneOptions{
			TotalThreads: tuneThreads,
			Registry:     reg,
		}
		if opts.Buffers == 0 {
			// Re-provisioning only pays off when the stages actually
			// overlap; give the pipeline the paper's triple buffering.
			opts.Buffers = 3
		}
	}
	if chaos {
		plan = fault.NewPlan(chaosSeed, units.BytesForElements(n))
		inj = plan.Injector()
		res = telemetry.NewResilience(reg)
		inj.Metrics = res
		opts.Heap = memkind.NewHeap(plan.HBWCapacity, 1<<42)
		opts.AllocFaults = inj
		opts.Resilience = res
		opts.Wrap = inj.Wrap
		opts.Retry = plan.Retry
		opts.ChunkTimeout = plan.ChunkTimeout
		opts.Buffers = 3
	}
	return inj, res, plan
}

// emitRealTelemetry renders the captured run: stall/overlap report, model
// drift, Chrome trace file, Prometheus metrics. It publishes the span-
// derived metrics into the run's shared registry, alongside whatever the
// autotuner and fault injector already recorded there.
func emitRealTelemetry(rec *telemetry.Recorder, reg *telemetry.Registry, tracePath string, metrics bool, n int64, threads int, alg string) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mlmsort: %v\n", err)
		os.Exit(2)
	}
	spans := rec.Spans()
	a := telemetry.Publish(reg, spans)
	// Trace file first: if stdout is a pipe truncated early (e.g. | head),
	// the process dies on a later print and the file must already exist.
	if tracePath != "" {
		var ct telemetry.ChromeTrace
		ct.AddProcessName(1, fmt.Sprintf("%s (real)", alg))
		ct.AddSpans(1, spans)
		if err := ct.WriteFile(tracePath); err != nil {
			fail(err)
		}
	}
	fmt.Println()
	fmt.Print(a.StallReport().ASCII())
	fmt.Println()
	fmt.Print(a.ModelDriftReport(driftPrediction(n, threads)).ASCII())
	if tracePath != "" {
		fmt.Printf("\nwrote Chrome trace (%d spans) to %s\n", len(spans), tracePath)
	}
	if metrics {
		fmt.Println()
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
	}
}
