// Command mlmsort runs one sort configuration, either on the simulated KNL
// (default; paper-scale sizes allowed) or for real on host data (-real;
// use modest sizes).
//
// Examples:
//
//	mlmsort -alg MLM-sort -n 2000000000 -order random
//	mlmsort -alg MLM-implicit -n 6000000000 -order reverse -chunk 1500000000
//	mlmsort -real -alg MLM-sort -n 1000000 -threads 8
package main

import (
	"flag"
	"fmt"
	"os"

	"knlmlm/internal/mlmsort"
	"knlmlm/internal/workload"
)

func parseAlg(s string) (mlmsort.Algorithm, error) {
	for _, a := range append(mlmsort.Algorithms(), mlmsort.BasicChunked) {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func main() {
	algName := flag.String("alg", "MLM-sort", "algorithm: GNU-flat, GNU-cache, MLM-ddr, MLM-sort, MLM-implicit, Basic-chunked")
	n := flag.Int64("n", 2_000_000_000, "element count")
	orderName := flag.String("order", "random", "input order (random, reverse, sorted, nearly-sorted, organ-pipe, few-unique)")
	threads := flag.Int("threads", 256, "thread budget")
	chunk := flag.Int64("chunk", 0, "megachunk elements (0 = paper default)")
	real := flag.Bool("real", false, "execute the real data flow on the host instead of simulating")
	repeats := flag.Int("runs", 1, "simulated repetitions (with the run-to-run noise model)")
	verbose := flag.Bool("v", false, "print the phase trace")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mlmsort: %v\n", err)
		os.Exit(2)
	}

	alg, err := parseAlg(*algName)
	if err != nil {
		fail(err)
	}
	order, err := workload.ParseOrder(*orderName)
	if err != nil {
		fail(err)
	}

	if *real {
		if *n > 1<<28 {
			fail(fmt.Errorf("real mode sorts host data; use -n <= %d", 1<<28))
		}
		xs := workload.Generate(order, int(*n), 1)
		if err := mlmsort.RunReal(alg, xs, *threads, int(*chunk)); err != nil {
			fail(err)
		}
		if !workload.IsSorted(xs) {
			fail(fmt.Errorf("output not sorted — algorithm bug"))
		}
		fmt.Printf("%s sorted %d %s elements on the host (verified)\n", alg, *n, order)
		return
	}

	cfg := mlmsort.PaperSortConfig(*n, order)
	cfg.Threads = *threads
	cfg.MegachunkElements = *chunk
	if *repeats > 1 {
		s := mlmsort.Repeated(alg, cfg, *repeats, 1)
		fmt.Printf("%s  n=%d  %s: %.2fs ± %.4fs (n=%d)\n", alg, *n, order, s.Mean, s.StdDev, s.N)
		return
	}
	res := mlmsort.Simulate(alg, cfg)
	fmt.Printf("%s  n=%d  %s: %.2fs (simulated)\n", alg, *n, order, res.Time.Seconds())
	if *verbose {
		fmt.Print(res.Trace.String())
	}
}
