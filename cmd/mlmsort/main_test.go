package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"knlmlm/internal/mlmsort"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/workload"
)

// TestAutotuneAndChaosShareOneRegistry is the regression test for the
// flag-composition bug this wiring fixes: -autotune and -chaos used to
// publish into separate, discarded registries, so -metrics could never
// show both families from one run. The unified wiring must put
// autotune_*, faults_*, and pipeline_* into the SAME scrape — and the
// run must still sort correctly with both subsystems active.
func TestAutotuneAndChaosShareOneRegistry(t *testing.T) {
	const n = 300_000
	xs := workload.Generate(workload.Random, n, 1)

	reg := telemetry.NewRegistry()
	opts := mlmsort.RealOptions{}
	inj, res, _ := wireReal(&opts, reg, true, 6, true, 7, n)
	if inj == nil || res == nil {
		t.Fatal("wireReal did not build the chaos machinery")
	}

	stats, err := mlmsort.RunRealResilient(context.Background(), mlmsort.MLMSort, xs, 4, 0, opts)
	if err != nil {
		t.Fatalf("RunRealResilient: %v", err)
	}
	if !workload.IsSorted(xs) {
		t.Fatal("output not sorted with -autotune -chaos composed")
	}
	if stats.Megachunks == 0 || stats.Staged == 0 {
		t.Fatalf("run did not stage: %+v", stats)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	scrape := buf.String()
	for _, family := range []string{
		"autotune_reprovisions_total", // -autotune's registry output
		"autotune_copy_in_threads",
		"faults_injected_total", // -chaos's resilience output
		"pipeline_completions_total",
	} {
		if !strings.Contains(scrape, family) {
			t.Errorf("one-registry scrape is missing %s:\n%s", family, scrape)
		}
	}
}
