// Command calibrate fits the sort cost model's rate constants
// (mlmsort.Calibration) against the paper's Table 1.
//
// The fit minimises the sum of squared log-errors of the within-config
// speedup ratios (each algorithm vs GNU-flat at the same size and input
// order), then reports the single TimeScale that anchors absolute seconds.
// Ratios — who wins and by how much — are the reproduction target; see
// EXPERIMENTS.md. The paper's 6 G random MLM-ddr cell (18.74 s, identical
// to the 4 G cell) is excluded as a probable transcription error.
//
// Usage: calibrate [-iters N] [-v]
package main

import (
	"flag"
	"fmt"
	"math"

	"knlmlm/internal/mlmsort"
	"knlmlm/internal/units"
	"knlmlm/internal/workload"
)

// paperCell is one Table 1 measurement.
type paperCell struct {
	elements int64
	order    workload.Order
	alg      mlmsort.Algorithm
	seconds  float64
	exclude  bool
}

func paperTable1() []paperCell {
	type row struct {
		alg mlmsort.Algorithm
		t   [3]float64 // 2G, 4G, 6G
	}
	random := []row{
		{mlmsort.GNUFlat, [3]float64{11.92, 24.21, 36.52}},
		{mlmsort.GNUCache, [3]float64{9.73, 19.76, 29.53}},
		{mlmsort.MLMDDr, [3]float64{9.28, 18.74, 18.74}}, // 6G value is a probable paper typo
		{mlmsort.MLMSort, [3]float64{8.09, 16.28, 22.71}},
		{mlmsort.MLMImplicit, [3]float64{7.37, 14.56, 21.66}},
	}
	reverse := []row{
		{mlmsort.GNUFlat, [3]float64{7.97, 16.06, 23.94}},
		{mlmsort.GNUCache, [3]float64{7.19, 14.27, 21.85}},
		{mlmsort.MLMDDr, [3]float64{4.79, 9.53, 14.48}},
		{mlmsort.MLMSort, [3]float64{4.46, 9.02, 12.56}},
		{mlmsort.MLMImplicit, [3]float64{4.10, 8.31, 12.76}},
	}
	sizes := []int64{2_000_000_000, 4_000_000_000, 6_000_000_000}
	var cells []paperCell
	add := func(rows []row, order workload.Order) {
		for _, r := range rows {
			for i, n := range sizes {
				cells = append(cells, paperCell{
					elements: n, order: order, alg: r.alg, seconds: r.t[i],
					exclude: r.alg == mlmsort.MLMDDr && n == sizes[2],
				})
			}
		}
	}
	add(random, workload.Random)
	add(reverse, workload.Reverse)
	return cells
}

// simGrid simulates every (size, order, algorithm) cell once.
func simGrid(cal mlmsort.Calibration) map[paperCellKey]float64 {
	out := map[paperCellKey]float64{}
	for _, order := range workload.PaperOrders() {
		for _, n := range []int64{2_000_000_000, 4_000_000_000, 6_000_000_000} {
			cfg := mlmsort.PaperSortConfig(n, order)
			cfg.Cal = cal
			for _, a := range mlmsort.Algorithms() {
				out[paperCellKey{n, order, a}] = mlmsort.Simulate(a, cfg).Time.Seconds()
			}
		}
	}
	return out
}

type paperCellKey struct {
	elements int64
	order    workload.Order
	alg      mlmsort.Algorithm
}

// fig7Penalty enforces Figure 7's shape: at 6 G elements, larger chunks
// must not be slower for MLM-sort (flat) nor for MLM-implicit. Each rising
// adjacent pair contributes its squared relative rise.
func fig7Penalty(cal mlmsort.Calibration) float64 {
	var pen float64
	sweep := func(a mlmsort.Algorithm, chunks []int64) {
		prev := -1.0
		for _, ch := range chunks {
			cfg := mlmsort.PaperSortConfig(6_000_000_000, workload.Random)
			cfg.Cal = cal
			cfg.MegachunkElements = ch
			t := mlmsort.Simulate(a, cfg).Time.Seconds()
			if prev > 0 && t > prev {
				d := (t - prev) / prev
				pen += d * d
			}
			prev = t
		}
	}
	sweep(mlmsort.MLMSort, []int64{250_000_000, 500_000_000, 1_000_000_000, 2_000_000_000})
	sweep(mlmsort.MLMImplicit, []int64{500_000_000, 1_500_000_000, 3_000_000_000, 6_000_000_000})
	return pen
}

// loss scores a calibration: squared log-error of speedup ratios plus the
// Figure 7 shape penalty.
func loss(cal mlmsort.Calibration, cells []paperCell) float64 {
	if err := cal.Validate(); err != nil {
		return math.Inf(1)
	}
	sim := simGrid(cal)
	// Index paper GNU-flat baselines.
	base := map[paperCellKey]float64{}
	for _, c := range cells {
		if c.alg == mlmsort.GNUFlat {
			base[paperCellKey{c.elements, c.order, mlmsort.GNUFlat}] = c.seconds
		}
	}
	var sum float64
	for _, c := range cells {
		if c.exclude || c.alg == mlmsort.GNUFlat {
			continue
		}
		pBase := base[paperCellKey{c.elements, c.order, mlmsort.GNUFlat}]
		sBase := sim[paperCellKey{c.elements, c.order, mlmsort.GNUFlat}]
		paperRatio := pBase / c.seconds
		simRatio := sBase / sim[paperCellKey{c.elements, c.order, c.alg}]
		d := math.Log(simRatio / paperRatio)
		sum += d * d
	}
	return sum + 20*fig7Penalty(cal) + 30*orderingPenalty(sim)
}

// orderingPenalty is a hinge on Table 1's qualitative ordering: within
// every configuration, MLM-implicit < MLM-sort < MLM-ddr < GNU-cache <
// GNU-flat (random); for reverse inputs the same except the paper itself
// records MLM-implicit slightly behind MLM-sort at 6 G, so only the
// MLM-vs-GNU and sort-vs-ddr relations are enforced there.
func orderingPenalty(sim map[paperCellKey]float64) float64 {
	var pen float64
	hinge := func(faster, slower float64) {
		if faster >= slower {
			d := math.Log(faster / slower)
			pen += d * d
		}
	}
	for _, order := range workload.PaperOrders() {
		for _, n := range []int64{2_000_000_000, 4_000_000_000, 6_000_000_000} {
			at := func(a mlmsort.Algorithm) float64 { return sim[paperCellKey{n, order, a}] }
			hinge(at(mlmsort.MLMSort), at(mlmsort.MLMDDr))
			hinge(at(mlmsort.MLMDDr), at(mlmsort.GNUCache))
			hinge(at(mlmsort.GNUCache), at(mlmsort.GNUFlat))
			if order == workload.Random {
				hinge(at(mlmsort.MLMImplicit), at(mlmsort.MLMSort))
			}
		}
	}
	return pen
}

func main() {
	iters := flag.Int("iters", 40, "coordinate-descent sweeps")
	verbose := flag.Bool("v", false, "print every improvement")
	flag.Parse()

	cells := paperTable1()

	// Multi-start: greedy descent is path-dependent, so begin from several
	// seeds spanning the (latency-penalty, fan-penalty) plane and keep the
	// best basin.
	seeds := []mlmsort.Calibration{mlmsort.DefaultCalibration()}
	for _, pen := range []float64{0.75, 0.85, 0.95} {
		for _, fan := range []float64{0.1, 0.3, 0.5} {
			s := mlmsort.DefaultCalibration()
			s.DDRLatencyPenalty = pen
			s.MergeFanPenalty = fan
			seeds = append(seeds, s)
		}
	}
	cal := seeds[0]
	best := loss(cal, cells)
	for _, s := range seeds[1:] {
		if l := loss(s, cells); l < best {
			best = l
			cal = s
		}
	}
	fmt.Printf("initial loss %.5f\n", best)

	type knob struct {
		name string
		get  func(*mlmsort.Calibration) float64
		set  func(*mlmsort.Calibration, float64)
		min  float64
		max  float64
	}
	knobs := []knob{
		{"SSerial",
			func(c *mlmsort.Calibration) float64 { return float64(c.SSerial) / 1e9 },
			func(c *mlmsort.Calibration, v float64) { c.SSerial = units.GBps(v) }, 0.05, 3},
		{"DDRLatencyPenalty",
			func(c *mlmsort.Calibration) float64 { return c.DDRLatencyPenalty },
			func(c *mlmsort.Calibration, v float64) { c.DDRLatencyPenalty = v }, 0.3, 1},
		// SMergeBase is capped near SSerial's scale: merge comparison
		// levels priced far below sort levels would make tiny chunks win
		// on compute, inverting the paper's Figure 7.
		{"SMergeBase",
			func(c *mlmsort.Calibration) float64 { return float64(c.SMergeBase) / 1e9 },
			func(c *mlmsort.Calibration, v float64) { c.SMergeBase = units.GBps(v) }, 0.1, 1.2},
		{"MergeFanPenalty",
			func(c *mlmsort.Calibration) float64 { return c.MergeFanPenalty },
			func(c *mlmsort.Calibration, v float64) { c.MergeFanPenalty = v }, 0.01, 0.6},
		{"GNUWorkInflation",
			func(c *mlmsort.Calibration) float64 { return c.GNUWorkInflation },
			func(c *mlmsort.Calibration, v float64) { c.GNUWorkInflation = v }, 1, 2},
	}

	step := 0.25
	for it := 0; it < *iters; it++ {
		improved := false
		for _, k := range knobs {
			cur := k.get(&cal)
			for _, cand := range []float64{cur * (1 + step), cur * (1 - step)} {
				if cand < k.min || cand > k.max {
					continue
				}
				trial := cal
				k.set(&trial, cand)
				if l := loss(trial, cells); l < best {
					best = l
					cal = trial
					improved = true
					if *verbose {
						fmt.Printf("  it %d: %s=%.4f loss=%.5f\n", it, k.name, cand, l)
					}
				}
			}
		}
		if !improved {
			step /= 2
			if step < 0.005 {
				break
			}
		}
	}

	// Anchor absolute time: geometric mean of paper/sim over all cells.
	// simGrid's times already include the in-fit TimeScale, so the
	// correction multiplies it.
	sim := simGrid(cal)
	var logSum float64
	var count int
	for _, c := range cells {
		if c.exclude {
			continue
		}
		logSum += math.Log(c.seconds / sim[paperCellKey{c.elements, c.order, c.alg}])
		count++
	}
	correction := math.Exp(logSum / float64(count))
	cal.TimeScale *= correction

	fmt.Printf("final loss %.5f\n", best)
	fmt.Printf("SSerial           = %.4f GB/s\n", float64(cal.SSerial)/1e9)
	fmt.Printf("DDRLatencyPenalty = %.4f\n", cal.DDRLatencyPenalty)
	fmt.Printf("SMergeBase        = %.4f GB/s\n", float64(cal.SMergeBase)/1e9)
	fmt.Printf("MergeFanPenalty   = %.4f\n", cal.MergeFanPenalty)
	fmt.Printf("GNUWorkInflation  = %.4f\n", cal.GNUWorkInflation)
	fmt.Printf("TimeScale         = %.4f\n", cal.TimeScale)

	fmt.Println("\nresulting grid (scaled seconds, paper in parentheses):")
	for _, order := range workload.PaperOrders() {
		for _, n := range []int64{2_000_000_000, 4_000_000_000, 6_000_000_000} {
			fmt.Printf("%-8s n=%dG: ", order, n/1_000_000_000)
			for _, a := range mlmsort.Algorithms() {
				simT := sim[paperCellKey{n, order, a}] * correction
				var paperT float64
				for _, c := range cells {
					if c.elements == n && c.order == order && c.alg == a {
						paperT = c.seconds
					}
				}
				fmt.Printf("%s=%.2f(%.2f) ", a, simT, paperT)
			}
			fmt.Println()
		}
	}
}
