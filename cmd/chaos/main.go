// Command chaos soaks the real execution stack under randomized injected
// faults. Each run derives a survivable-by-construction fault plan from
// its seed (stage errors, stage panics, added latency, MCDRAM allocation
// failures, and an undersized staging heap), executes a full MLM sort
// and/or the streaming merge benchmark under that plan, and verifies the
// output bit-for-bit. Because plans are survivable by construction and
// injection schedules are deterministic in the seed, any verification
// failure is a reproducible pipeline bug — rerun with the printed seed.
//
// Examples:
//
//	chaos -runs 5 -n 200000
//	chaos -seed 1337 -runs 1 -kind sort -v
//	chaos -runs 3 -kind merge -metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"knlmlm/internal/fault"
	"knlmlm/internal/memkind"
	"knlmlm/internal/mergebench"
	"knlmlm/internal/mlmsort"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/units"
	"knlmlm/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "base seed; run r uses seed+r")
	runs := flag.Int("runs", 5, "chaos runs per kind")
	n := flag.Int("n", 200_000, "elements per run")
	threads := flag.Int("threads", 4, "worker threads")
	kind := flag.String("kind", "both", "workload under chaos: sort, merge, or both")
	megachunk := flag.Int("megachunk", 0, "sort megachunk elements (0 = n/8)")
	chunkLen := flag.Int("chunklen", 4096, "merge benchmark chunk elements")
	repeats := flag.Int("repeats", 2, "merge benchmark compute repeats")
	buffers := flag.Int("buffers", 3, "staging buffers")
	verbose := flag.Bool("v", false, "print each run's plan and tally")
	metrics := flag.Bool("metrics", false, "print Prometheus metrics of the final run")
	flag.Parse()

	if *kind != "sort" && *kind != "merge" && *kind != "both" {
		fmt.Fprintf(os.Stderr, "chaos: unknown kind %q (want sort, merge, or both)\n", *kind)
		os.Exit(2)
	}
	mc := *megachunk
	if mc <= 0 {
		mc = *n / 8
	}

	start := time.Now()
	failures := 0
	var totalFaults, totalRetries, totalDegradations int64
	var lastReg *telemetry.Registry
	for r := 0; r < *runs; r++ {
		runSeed := *seed + int64(r)
		plan := fault.NewPlan(runSeed, units.BytesForElements(int64(*n)))
		if *kind == "sort" || *kind == "both" {
			if err := chaosSort(plan, *n, *threads, mc, *buffers, *verbose, &lastReg,
				&totalFaults, &totalRetries, &totalDegradations); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: FAIL sort seed=%d: %v\n", runSeed, err)
				failures++
			}
		}
		if *kind == "merge" || *kind == "both" {
			if err := chaosMerge(plan, *n, *chunkLen, *repeats, *buffers, *verbose, &lastReg,
				&totalFaults, &totalRetries, &totalDegradations); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: FAIL merge seed=%d: %v\n", runSeed, err)
				failures++
			}
		}
	}
	fmt.Printf("chaos: %d run(s), %d fault(s) injected, %d retr%s, %d degradation(s) in %v\n",
		*runs, totalFaults, totalRetries, plural(totalRetries, "y", "ies"), totalDegradations,
		time.Since(start).Round(time.Millisecond))
	if *metrics && lastReg != nil {
		fmt.Println()
		if err := lastReg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "chaos: %d verification failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("chaos: all outputs verified")
}

func plural(n int64, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// rig binds one run's plan to a fresh injector, heap, and metric sink.
type rig struct {
	plan fault.Plan
	inj  *fault.Injector
	heap *memkind.Heap
	reg  *telemetry.Registry
	res  *telemetry.Resilience
}

func newRig(plan fault.Plan) *rig {
	reg := telemetry.NewRegistry()
	res := telemetry.NewResilience(reg)
	inj := plan.Injector()
	inj.Metrics = res
	return &rig{
		plan: plan,
		inj:  inj,
		// DDR effectively unbounded: only MCDRAM pressure is under test.
		heap: memkind.NewHeap(plan.HBWCapacity, 1<<42),
		reg:  reg,
		res:  res,
	}
}

// account folds the run's tallies into the totals and reports them.
func (g *rig) account(label string, faults, retries, degradations *int64, verbose bool) {
	*faults += g.inj.Total()
	*retries += g.res.Retries()
	*degradations += g.res.Degradations()
	if verbose {
		fmt.Printf("  %s %v: %v retries=%d degradations=%d\n",
			label, g.plan, g.inj, g.res.Retries(), g.res.Degradations())
	}
}

func chaosSort(plan fault.Plan, n, threads, megachunk, buffers int, verbose bool,
	lastReg **telemetry.Registry, faults, retries, degradations *int64) error {
	g := newRig(plan)
	xs := workload.Generate(workload.Random, n, plan.Seed)
	fp := workload.Fingerprint(xs)
	stats, err := mlmsort.RunRealResilient(context.Background(), mlmsort.MLMSort, xs, threads, megachunk,
		mlmsort.RealOptions{
			Heap:         g.heap,
			AllocFaults:  g.inj,
			Resilience:   g.res,
			Wrap:         g.inj.Wrap,
			Retry:        plan.Retry,
			ChunkTimeout: plan.ChunkTimeout,
			Buffers:      buffers,
		})
	g.account(fmt.Sprintf("sort  seed=%d stats=%+v", plan.Seed, stats), faults, retries, degradations, verbose)
	*lastReg = g.reg
	if err != nil {
		return fmt.Errorf("survivable plan aborted: %w (%v)", err, g.inj)
	}
	if !workload.IsSorted(xs) {
		return fmt.Errorf("output not sorted (%v)", g.inj)
	}
	if workload.Fingerprint(xs) != fp {
		return fmt.Errorf("output is not a permutation of the input (%v)", g.inj)
	}
	if g.heap.HBWInUse() != 0 {
		return fmt.Errorf("staging heap leaked %v", g.heap.HBWInUse())
	}
	return nil
}

func chaosMerge(plan fault.Plan, n, chunkLen, repeats, buffers int, verbose bool,
	lastReg **telemetry.Registry, faults, retries, degradations *int64) error {
	g := newRig(plan)
	src := workload.Generate(workload.Random, n, plan.Seed+1)
	out, stats, err := mergebench.RunRealResilient(context.Background(), src, chunkLen, repeats, buffers,
		mergebench.RealOptions{
			Heap:         g.heap,
			AllocFaults:  g.inj,
			Resilience:   g.res,
			Wrap:         g.inj.Wrap,
			Retry:        plan.Retry,
			ChunkTimeout: plan.ChunkTimeout,
		})
	g.account(fmt.Sprintf("merge seed=%d stats=%+v", plan.Seed, stats), faults, retries, degradations, verbose)
	*lastReg = g.reg
	if err != nil {
		return fmt.Errorf("survivable plan aborted: %w (%v)", err, g.inj)
	}
	// Contract: every chunk of the output is its input chunk, sorted.
	for lo := 0; lo < n; lo += chunkLen {
		hi := lo + chunkLen
		if hi > n {
			hi = n
		}
		if !workload.IsSorted(out[lo:hi]) {
			return fmt.Errorf("chunk at %d not sorted (%v)", lo, g.inj)
		}
		if workload.Fingerprint(out[lo:hi]) != workload.Fingerprint(src[lo:hi]) {
			return fmt.Errorf("chunk at %d is not a permutation of its input (%v)", lo, g.inj)
		}
	}
	if g.heap.HBWInUse() != 0 || g.heap.DDRInUse() != 0 {
		return fmt.Errorf("buffer placements leaked: hbw=%v ddr=%v", g.heap.HBWInUse(), g.heap.DDRInUse())
	}
	return nil
}
