// Command mlmcoord runs the cluster coordinator: the distributed sort
// tier's router (internal/cluster) fronting a fleet of mlmserve
// backends with the same HTTP protocol a single node speaks.
//
// Examples:
//
//	mlmcoord -addr :9090 -backends http://127.0.0.1:8080,http://127.0.0.1:8081
//	mlmcoord -addr 127.0.0.1:0 -backends "$B0,$B1" -sample-rate 0.02 -merge-threads 4
//
// Jobs are range-partitioned with sampled splitters sized to each
// backend's polled capacity (Eq. 1-5 model on the node's own EWMA
// rates, degraded by brownout level and queue depth), scattered as
// binary wire uploads, and merged back into the client's download as a
// windowed k-way merge of the backend result streams. A backend that
// dies mid-job costs only the partitions it held; each is re-run on a
// surviving node, resuming mid-stream where the download stopped.
//
// The chosen listen address is printed on one line ("mlmcoord listening
// on ...") so wrappers binding port 0 can discover the port. SIGINT or
// SIGTERM drains: /healthz flips to 503, new submissions are refused,
// in-flight jobs finish, then the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"knlmlm/internal/cluster"
)

type options struct {
	addr         string
	backends     string
	sampleRate   float64
	partsPerNode int
	mergeThreads int
	blockElems   int
	retries      int
	pollInterval time.Duration
	retain       int
	skewLimit    float64
	seed         int64
	drainTimeout time.Duration
	logLevel     string
	logJSON      bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":9090", "listen address (host:port; port 0 picks a free port)")
	flag.StringVar(&o.backends, "backends", "", "comma-separated mlmserve base URLs (required)")
	flag.Float64Var(&o.sampleRate, "sample-rate", 0, "fraction of keys sampled for splitter selection (0 = 0.01)")
	flag.IntVar(&o.partsPerNode, "parts-per-backend", 0, "range partitions per backend per job (0 = 2)")
	flag.IntVar(&o.mergeThreads, "merge-threads", 0, "thread budget for the result merge's read-ahead provisioning (0 = GOMAXPROCS)")
	flag.IntVar(&o.blockElems, "merge-block-elems", 0, "merge emission granularity, elements per block (0 = 32768)")
	flag.IntVar(&o.retries, "retries", 0, "failure-driven re-runs allowed per partition (0 = 4)")
	flag.DurationVar(&o.pollInterval, "poll-interval", 0, "backend capacity poll cadence (0 = 500ms)")
	flag.IntVar(&o.retain, "retain", 0, "terminal jobs retained for status lookup (0 = 64)")
	flag.Float64Var(&o.skewLimit, "skew-limit", 0, "partition skew triggering a splitter resample (0 = 2.5)")
	flag.Int64Var(&o.seed, "seed", 1, "splitter sampling seed")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "graceful-drain bound on shutdown")
	flag.StringVar(&o.logLevel, "log-level", "info", "structured log level: debug, info, warn, error, or off")
	flag.BoolVar(&o.logJSON, "log-json", false, "emit structured logs as JSON (default logfmt-style text)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "mlmcoord:", err)
		os.Exit(1)
	}
}

func buildLogger(level string, asJSON bool) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off", "none":
		return nil, nil
	default:
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn, error, or off", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	if asJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
}

func run(o options) error {
	var backends []string
	for _, b := range strings.Split(o.backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	if len(backends) == 0 {
		return fmt.Errorf("-backends is required (comma-separated mlmserve URLs)")
	}
	logger, err := buildLogger(o.logLevel, o.logJSON)
	if err != nil {
		return err
	}

	coord, err := cluster.New(cluster.Config{
		Backends:        backends,
		SampleRate:      o.sampleRate,
		PartsPerBackend: o.partsPerNode,
		MergeThreads:    o.mergeThreads,
		MergeBlockElems: o.blockElems,
		MaxRetries:      o.retries,
		PollInterval:    o.pollInterval,
		RetainJobs:      o.retain,
		SkewLimit:       o.skewLimit,
		Seed:            o.seed,
		Logger:          logger,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	srv, err := cluster.NewServer(cluster.ServerConfig{Coordinator: coord})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	fmt.Printf("mlmcoord listening on %s (%d backends)\n", ln.Addr(), len(backends))

	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("mlmcoord: %v — draining\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mlmcoord: drain:", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Println("mlmcoord: drained")
	return nil
}
