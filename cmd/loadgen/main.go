// Command loadgen is a load generator for the sort service
// (cmd/mlmserve). It sweeps a list of offered arrival rates; at each
// level it issues POST /v1/sort requests on a fixed arrival clock —
// independent of completions, so queueing delay shows up as latency
// rather than throttled offered load — and records, per level:
//
//   - goodput: verified-sorted jobs completed per second,
//   - latency percentiles (p50/p95/p99) of submit→terminal,
//   - typed rejections (HTTP 429 backpressure), server-side sheds
//     (accepted jobs evicted by overload control), and failures.
//
// Each arrival is handled by a closed-loop retry client: a rejected
// submission backs off (honoring the server's model-derived Retry-After
// hint, with +/-25% jitter so retries never synchronize) and retries up
// to -retries times, spending from a shared per-level -retry-budget; a
// run of -cb-threshold consecutive 429/503 answers opens a circuit
// breaker for -cb-cooldown, keeping a browned-out server from being
// hammered. With -deadline-ms each job carries a start deadline, which
// arms the server's predicted-late admission gate and in-queue shedding.
//
// With -spill-n set (and the server started with DDR and disk budgets),
// the sweep is followed by a spill phase: -spill-jobs over-DDR jobs are
// submitted one at a time, each result is downloaded as a chunked stream
// and verified, and the phase records end-to-end latency, download
// throughput, and the server's spill_*/sched_spill_* telemetry (run
// counts, spilled bytes, measured disk rates) scraped from /metrics.
//
// At the end of the sweep, the server's job_phase_seconds{phase=...}
// histograms are scraped from /metrics and embedded as a per-phase
// breakdown (server_phase_breakdown), so the artifact attributes the
// goodput knee to a phase — queue wait vs lease wait vs pipeline run —
// rather than just reporting it.
//
// -wire selects the request/result encoding: "json" (default), "binary"
// (the application/x-mlm-keys frame stream of internal/wire — submits
// carry frame-stream bodies with options on the query string, downloads
// send Accept: application/x-mlm-keys), or "both", which runs the whole
// sweep once per encoding and reports the per-mode results side by side
// plus the binary-over-JSON download speedup.
//
// -key-type selects the key representation: "i64" (default), "f64"
// (float64 keys as raw IEEE-754 bit cells, verified against the
// service's total order), or "rec" (key+payload records, two cells
// each; sizes stay in cells and are rounded to whole records). Typed
// keys exist only on the binary wire, so f64/rec require -wire binary.
//
// The target may be a single mlmserve node or an mlmcoord cluster
// coordinator — the two speak the same protocol, and loadgen tells them
// apart by the "backends" fleet view in the /healthz body. Against a
// coordinator the same flags work unchanged; the spill phase drops its
// spilled-flag requirement (the coordinator's big-job path is the
// scatter/merge tier, not a local disk spill), and the sweep document
// gains a "cluster" block with the coordinator's routing and retry
// telemetry (cluster_* families) plus per-backend routed bytes.
//
// The sweep is written as JSON (default BENCH_PR8.json), the committed
// artifact EXPERIMENTS.md documents.
//
// Examples:
//
//	loadgen -url http://127.0.0.1:8080 -rates 25,50,100,200 -duration 3s
//	loadgen -url http://127.0.0.1:8080 -quick -out /dev/stdout
//	loadgen -url http://127.0.0.1:8080 -rates 25,50 -spill-n 200000 -spill-jobs 5
//	loadgen -url http://127.0.0.1:8080 -rates 50,100,200 -deadline-ms 2000 -retries 3
//	loadgen -url http://127.0.0.1:8080 -rates 50 -spill-n 200000 -wire both
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"knlmlm/internal/mem"
	"knlmlm/internal/wire"
)

type config struct {
	url      string
	rates    []float64
	duration time.Duration
	nMin     int
	nMax     int
	seed     int64
	out      string
	verify   bool
	// verifySample downloads and checks every k-th completed job instead
	// of all of them (1 = all). At deep overload the driver's own JSON
	// decode of every result competes with the server for the same CPUs;
	// sampling keeps the sortedness check honest without the driver
	// becoming the bottleneck it is trying to measure.
	verifySample int
	spillN       int
	spillJobs    int
	deadlineMS   int64
	retries      int
	budget       int
	cbTrips      int
	cbCooldown   time.Duration
	// wireMode selects the submit/download encoding: "json", "binary", or
	// "both" (one full sweep per encoding).
	wireMode string
	// keyType selects the key representation: "i64" (default), "f64"
	// (float64 keys as raw IEEE-754 bit cells), or "rec" (key+payload
	// records, two cells each). Typed keys ride the binary wire only, so
	// f64/rec require -wire binary. n-min/n-max/spill-n stay in cells.
	keyType string
	// kind is keyType resolved to its wire stream kind.
	kind wire.Kind
	// cluster is set after the healthz probe when the target turns out to
	// be a coordinator (its /healthz carries a "backends" fleet view). It
	// relaxes single-node-only checks; no flag sets it.
	cluster bool
}

// sortRequest mirrors internal/serve's POST /v1/sort body.
type sortRequest struct {
	Keys       []int64 `json:"keys"`
	Priority   int     `json:"priority,omitempty"`
	DeadlineMS int64   `json:"deadline_ms,omitempty"`
	Wait       bool    `json:"wait,omitempty"`
}

type jobStatus struct {
	ID             string `json:"id"`
	State          string `json:"state"`
	Error          string `json:"error,omitempty"`
	ResultURL      string `json:"result_url,omitempty"`
	Spilled        bool   `json:"spilled,omitempty"`
	Shed           bool   `json:"shed,omitempty"`
	DiskLeaseBytes int64  `json:"disk_lease_bytes,omitempty"`
	// QueueWait is the server-reported enqueue-to-start delay — the
	// quantity a start deadline bounds.
	QueueWait string `json:"queue_wait,omitempty"`
}

// errorBody mirrors internal/serve's rejection body: the typed reason
// and the server's millisecond-precision retry hint.
type errorBody struct {
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// levelResult is one offered-load point of the sweep.
type levelResult struct {
	OfferedRPS  float64 `json:"offered_rps"`
	DurationSec float64 `json:"duration_s"`
	Submitted   int     `json:"submitted"`
	Completed   int     `json:"completed"`
	Rejected    int     `json:"rejected"`
	// Shed counts jobs the server accepted and then evicted by overload
	// control (deadline infeasible in queue, brownout) — distinct from
	// rejections (never admitted) and failures (anything unexplained).
	Shed    int `json:"shed"`
	Failed  int `json:"failed"`
	Retries int `json:"retries"`
	// CompletedInWindow counts completions that landed inside the
	// offered-load window; GoodputRPS is that count over the window
	// length. Completions during the straggler drain (retry backoff tails
	// resolving after arrivals stop) are in Completed but not here — they
	// are work the server did outside the measured interval.
	CompletedInWindow int     `json:"completed_in_window"`
	GoodputRPS        float64 `json:"goodput_rps"`
	Latency           latency `json:"latency_ms"`
	// StartDelay summarizes the server-reported queue wait of completed
	// jobs — the quantity the start deadline bounds. Client-side latency
	// above includes the driver's own submit/download queuing; this is
	// the deadline-relevant distribution.
	StartDelay latency `json:"start_delay_ms"`
	// BreakerTrips is how many times this level's shared circuit breaker
	// opened on consecutive backpressure answers.
	BreakerTrips int64 `json:"breaker_trips,omitempty"`
	// Overload is the server-side overload attribution over this level:
	// the delta of sched_shed_total{reason} and the brownout level at the
	// end of the level.
	Overload *overloadStats `json:"overload,omitempty"`
}

// overloadStats is the server-side overload attribution for one level.
type overloadStats struct {
	ShedByReason  map[string]float64 `json:"shed_by_reason,omitempty"`
	BrownoutLevel float64            `json:"brownout_level_end"`
	BrownoutRaise float64            `json:"brownout_raises,omitempty"`
}

type latency struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// spillResult is the over-DDR spill phase of the sweep: every job takes
// the three-level path (MCDRAM-staged sort, disk runs, streamed merge).
type spillResult struct {
	Elems     int     `json:"elems_per_job"`
	Jobs      int     `json:"jobs"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	Latency   latency `json:"latency_ms"`
	// DownloadMBps is the mean streamed-result download rate, body bytes
	// over wall time of the chunked GET.
	DownloadMBps float64 `json:"download_mbps"`
	// SortMBps is the mean end-to-end spill throughput: input bytes over
	// submit-to-verified wall time (sort + spill + merge + stream).
	SortMBps float64 `json:"sort_mbps"`
	// Telemetry scraped from the server's /metrics after the phase: the
	// disk-rate model inputs and the spill tier's run accounting.
	DiskWriteBps float64 `json:"disk_write_bytes_per_sec"`
	DiskReadBps  float64 `json:"disk_read_bytes_per_sec"`
	SpillJobs    float64 `json:"sched_spill_jobs_total"`
	SpillRuns    float64 `json:"sched_spill_runs_total"`
	SpilledBytes float64 `json:"sched_spill_bytes_written_total"`
}

// phaseStat is one phase row of the server-side breakdown, reduced from
// the job_phase_seconds{phase=...} histogram's sum and count.
type phaseStat struct {
	// Group classifies the phase: "wall" phases (admit/queue/lease/run)
	// sum to submit→terminal latency; "work" phases are thread-seconds
	// inside run; "post" phases (merge/stream) land after terminal.
	Group  string  `json:"group"`
	Count  int64   `json:"count"`
	TotalS float64 `json:"total_s"`
	MeanMS float64 `json:"mean_ms"`
	// Share is the phase's fraction of its group's total time.
	Share float64 `json:"share"`
}

// modeSweep is one encoding's full sweep: the offered-load levels and
// the optional spill phase, as measured with that wire format.
type modeSweep struct {
	Levels []levelResult `json:"levels"`
	Spill  *spillResult  `json:"spill,omitempty"`
}

// benchFile is the BENCH_PR8.json document.
type benchFile struct {
	Bench     string `json:"bench"`
	Target    string `json:"target"`
	Seed      int64  `json:"seed"`
	ElemRange [2]int `json:"elem_range"`
	Verified  bool   `json:"verified_sorted"`
	// Wire is the encoding the sweep ran with: "json", "binary", or
	// "both" (then Levels/Spill are empty and Modes carries the per-mode
	// results).
	Wire   string        `json:"wire"`
	Levels []levelResult `json:"levels,omitempty"`
	Spill  *spillResult  `json:"spill,omitempty"`
	// Modes holds one full sweep per encoding when -wire=both.
	Modes map[string]*modeSweep `json:"modes,omitempty"`
	// DownloadSpeedup is the binary-over-JSON ratio of spill-phase
	// download throughput when both modes measured one (-wire=both with
	// -spill-n).
	DownloadSpeedup float64 `json:"download_speedup_binary_over_json,omitempty"`
	// Phases is the server-side per-phase breakdown scraped from
	// job_phase_seconds at the end of the sweep (all levels and the spill
	// phase combined — the histograms are cumulative).
	Phases map[string]phaseStat `json:"server_phase_breakdown,omitempty"`
	// ModelDriftMean is the mean measured-run / Eq. 1-5-predicted ratio
	// over staged jobs (job_model_drift_ratio's sum/count; 0 when the
	// sweep ran no staged jobs).
	ModelDriftMean float64 `json:"model_drift_mean,omitempty"`
	// Cluster carries the coordinator's routing/retry telemetry when the
	// target is an mlmcoord tier rather than a single node.
	Cluster *clusterStats `json:"cluster,omitempty"`
}

// clusterStats is the coordinator-side view of the sweep, scraped from
// the cluster_* metric families after the last level.
type clusterStats struct {
	Backends          int     `json:"backends"`
	BackendsUp        int     `json:"backends_up"`
	Jobs              float64 `json:"cluster_jobs_total"`
	JobsFailed        float64 `json:"cluster_jobs_failed_total,omitempty"`
	Partitions        float64 `json:"cluster_partitions_total"`
	PartitionRetries  float64 `json:"cluster_partition_retries_total"`
	PartitionBackoffs float64 `json:"cluster_partition_backoffs_total,omitempty"`
	Resamples         float64 `json:"cluster_partition_resamples_total,omitempty"`
	MergeBytes        float64 `json:"cluster_merge_bytes_total"`
	MergeStallSec     float64 `json:"cluster_merge_stall_seconds_total"`
	// BytesRouted is per-backend scattered key bytes, indexed like the
	// coordinator's -backends list — the routing skew the weighted
	// splitter selection actually produced.
	BytesRouted []float64 `json:"backend_bytes_routed"`
}

func main() {
	cfg := config{}
	var ratesFlag string
	quick := flag.Bool("quick", false, "one short low-rate level (CI smoke)")
	flag.StringVar(&cfg.url, "url", "http://127.0.0.1:8080", "mlmserve base URL")
	flag.StringVar(&ratesFlag, "rates", "25,50,100,200", "offered arrival rates to sweep, jobs/sec")
	flag.DurationVar(&cfg.duration, "duration", 3*time.Second, "time spent at each offered rate")
	flag.IntVar(&cfg.nMin, "n-min", 1000, "minimum keys per job")
	flag.IntVar(&cfg.nMax, "n-max", 50000, "maximum keys per job")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.StringVar(&cfg.out, "out", "BENCH_PR8.json", "output JSON path")
	flag.BoolVar(&cfg.verify, "verify", true, "download and verify completed results are sorted")
	flag.IntVar(&cfg.verifySample, "verify-sample", 1, "verify every k-th completed job (1 = all; larger keeps the driver off the server's CPUs at deep overload)")
	flag.IntVar(&cfg.spillN, "spill-n", 0, "keys per spill-phase job; must exceed the server's DDR budget (0 disables the spill phase)")
	flag.IntVar(&cfg.spillJobs, "spill-jobs", 5, "jobs in the spill phase (with -spill-n)")
	flag.Int64Var(&cfg.deadlineMS, "deadline-ms", 0, "per-job start deadline sent to the server, ms after arrival (0 = none)")
	flag.IntVar(&cfg.retries, "retries", 3, "max retries per job after a backpressure answer")
	flag.IntVar(&cfg.budget, "retry-budget", 200, "shared retry tokens per level; an exhausted budget turns retries into give-ups")
	flag.IntVar(&cfg.cbTrips, "cb-threshold", 10, "consecutive 429/503 answers that open the circuit breaker (0 disables it)")
	flag.DurationVar(&cfg.cbCooldown, "cb-cooldown", 500*time.Millisecond, "how long an open circuit breaker stays open")
	flag.StringVar(&cfg.wireMode, "wire", "json", "submit/download encoding: json, binary, or both (one sweep per encoding)")
	flag.StringVar(&cfg.keyType, "key-type", "i64", "key representation: i64, f64 (float64 bit cells), or rec (key+payload records; sizes count cells). f64/rec require -wire binary")
	flag.Parse()

	switch cfg.wireMode {
	case "json", "binary", "both":
	default:
		fmt.Fprintf(os.Stderr, "loadgen: bad -wire %q (want json, binary, or both)\n", cfg.wireMode)
		os.Exit(1)
	}
	switch cfg.keyType {
	case "i64":
		cfg.kind = wire.KindInt64
	case "f64":
		cfg.kind = wire.KindFloat64
	case "rec":
		cfg.kind = wire.KindRecord
	default:
		fmt.Fprintf(os.Stderr, "loadgen: bad -key-type %q (want i64, f64, or rec)\n", cfg.keyType)
		os.Exit(1)
	}
	if cfg.kind != wire.KindInt64 && cfg.wireMode != "binary" {
		fmt.Fprintf(os.Stderr, "loadgen: -key-type %s needs -wire binary (typed keys have no JSON encoding)\n", cfg.keyType)
		os.Exit(1)
	}
	if cfg.kind == wire.KindRecord {
		// Record streams carry whole records: every job size in cells must
		// be even, so the bounds are rounded rather than rejected.
		cfg.nMin = max(cfg.nMin&^1, 2)
		cfg.nMax = max(cfg.nMax&^1, 2)
		cfg.spillN &^= 1
	}

	if *quick {
		ratesFlag = "20"
		cfg.duration = 1 * time.Second
		cfg.nMax = 8000
	}
	for _, f := range strings.Split(ratesFlag, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r <= 0 {
			fmt.Fprintf(os.Stderr, "loadgen: bad rate %q\n", f)
			os.Exit(1)
		}
		cfg.rates = append(cfg.rates, r)
	}

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	// The transport mirrors the driver's concurrency: enough idle conns to
	// avoid churn at the deepest overload level, and expect-continue
	// support so a pre-decode rejection costs one header exchange instead
	// of a full body upload.
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:          4096,
			MaxIdleConnsPerHost:   4096,
			ExpectContinueTimeout: time.Second,
		},
	}
	if err := waitHealthy(client, cfg.url, 10*time.Second); err != nil {
		return err
	}
	backends, up := probeCluster(client, cfg.url)
	cfg.cluster = backends > 0
	if cfg.cluster {
		fmt.Printf("target is a cluster coordinator: %d backends (%d up)\n", backends, up)
	}

	doc := benchFile{
		Bench:     "sort-service overload sweep (closed-loop retry clients)",
		Target:    cfg.url,
		Seed:      cfg.seed,
		ElemRange: [2]int{cfg.nMin, cfg.nMax},
		Verified:  cfg.verify,
		Wire:      cfg.wireMode,
	}
	modes := []string{cfg.wireMode}
	if cfg.wireMode == "both" {
		modes = []string{"json", "binary"}
		doc.Modes = map[string]*modeSweep{}
	}
	for _, mode := range modes {
		if cfg.wireMode == "both" {
			fmt.Printf("== wire: %s ==\n", mode)
		}
		sweep, err := runSweep(client, cfg, mode == "binary")
		if err != nil {
			return err
		}
		if cfg.wireMode == "both" {
			doc.Modes[mode] = sweep
		} else {
			doc.Levels = sweep.Levels
			doc.Spill = sweep.Spill
		}
	}
	if doc.Modes != nil {
		jm, bm := doc.Modes["json"], doc.Modes["binary"]
		if jm != nil && bm != nil && jm.Spill != nil && bm.Spill != nil && jm.Spill.DownloadMBps > 0 {
			doc.DownloadSpeedup = bm.Spill.DownloadMBps / jm.Spill.DownloadMBps
			fmt.Printf("download speedup binary/json: %.1fx (%.1f vs %.1f MB/s)\n",
				doc.DownloadSpeedup, bm.Spill.DownloadMBps, jm.Spill.DownloadMBps)
		}
	}

	phases, drift, err := scrapePhaseBreakdown(client, cfg.url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: phase scrape:", err)
	} else if len(phases) > 0 {
		doc.Phases = phases
		doc.ModelDriftMean = drift
		printPhaseSummary(phases, drift)
	}

	if cfg.cluster {
		cs, err := scrapeClusterStats(client, cfg.url, backends)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: cluster scrape:", err)
		} else {
			doc.Cluster = cs
			fmt.Printf("cluster: %d jobs over %d partitions, %d retries, %d backpressure waits, merge stall %.2fs\n",
				int(cs.Jobs), int(cs.Partitions), int(cs.PartitionRetries),
				int(cs.PartitionBackoffs), cs.MergeStallSec)
		}
	}

	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(cfg.out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.out)
	return nil
}

// runSweep drives the full measurement — every offered-load level plus
// the optional spill phase — with one wire encoding.
func runSweep(client *http.Client, cfg config, binary bool) (*modeSweep, error) {
	sweep := &modeSweep{}
	for _, rate := range cfg.rates {
		before, _ := scrapeOverload(client, cfg.url)
		lvl := runLevel(client, cfg, rate, binary)
		if after, err := scrapeOverload(client, cfg.url); err == nil {
			lvl.Overload = after.delta(before)
		}
		sweep.Levels = append(sweep.Levels, lvl)
		fmt.Printf("rate %6.1f/s: %d submitted, %d ok, %d rejected, %d shed, %d failed, %d retries — goodput %.1f/s, p50 %.1fms p95 %.1fms p99 %.1fms, start-delay p99 %.1fms\n",
			rate, lvl.Submitted, lvl.Completed, lvl.Rejected, lvl.Shed, lvl.Failed, lvl.Retries,
			lvl.GoodputRPS, lvl.Latency.P50, lvl.Latency.P95, lvl.Latency.P99, lvl.StartDelay.P99)
	}
	if cfg.spillN > 0 {
		sp, err := runSpillPhase(client, cfg, binary)
		if err != nil {
			return nil, err
		}
		sweep.Spill = sp
		fmt.Printf("spill %d×%d: %d ok, %d failed — p50 %.1fms, sort %.1f MB/s, download %.1f MB/s, %d runs over %d jobs\n",
			sp.Jobs, sp.Elems, sp.Completed, sp.Failed, sp.Latency.P50,
			sp.SortMBps, sp.DownloadMBps, int(sp.SpillRuns), int(sp.SpillJobs))
	}
	return sweep, nil
}

// submitBody renders one job's submit request for the chosen encoding:
// a JSON envelope, or the binary frame stream with the envelope options
// (wait, deadline_ms) carried on the query string.
func submitBody(keys []int64, deadlineMS int64, binary bool, kind wire.Kind) (body []byte, contentType, query string) {
	if !binary {
		raw, _ := json.Marshal(sortRequest{Keys: keys, Wait: true, DeadlineMS: deadlineMS})
		return raw, "application/json", ""
	}
	query = "?wait=1"
	if deadlineMS > 0 {
		query += "&deadline_ms=" + strconv.FormatInt(deadlineMS, 10)
	}
	return wire.EncodeKind(nil, kind, keys, 0), wire.ContentTypeFor(kind), query
}

// genCells fills one job's payload cells for the configured key type:
// random int64 keys, random finite float64 bit patterns, or key+payload
// record pairs with dup-heavy keys (n is rounded down to whole records
// by the callers).
func genCells(rng *rand.Rand, n int, kind wire.Kind) []int64 {
	cells := make([]int64, n)
	switch kind {
	case wire.KindFloat64:
		for i := range cells {
			cells[i] = int64(math.Float64bits(rng.NormFloat64() * 1e6))
		}
	case wire.KindRecord:
		for i := 0; i+1 < n; i += 2 {
			cells[i] = rng.Int63n(1 << 20)
			cells[i+1] = rng.Int63()
		}
	default:
		for i := range cells {
			cells[i] = rng.Int63()
		}
	}
	return cells
}

// cellsInOrder reports whether a downloaded result respects the key
// type's order: int64 ascending, the float64 total order over raw bits,
// or nondecreasing record keys (even cells).
func cellsInOrder(cells []int64, kind wire.Kind) bool {
	switch kind {
	case wire.KindFloat64:
		flip := func(v int64) uint64 {
			u := uint64(v)
			if u>>63 == 1 {
				return ^u
			}
			return u | 1<<63
		}
		for i := 1; i < len(cells); i++ {
			if flip(cells[i]) < flip(cells[i-1]) {
				return false
			}
		}
	case wire.KindRecord:
		for i := 2; i < len(cells); i += 2 {
			if cells[i] < cells[i-2] {
				return false
			}
		}
	default:
		for i := 1; i < len(cells); i++ {
			if cells[i] < cells[i-1] {
				return false
			}
		}
	}
	return true
}

// runSpillPhase submits cfg.spillJobs over-DDR jobs one at a time (the
// point is the three-level data path, not queueing), streams every result
// back, verifies it, and annotates the measurements with the server's
// spill telemetry.
func runSpillPhase(client *http.Client, cfg config, binary bool) (*spillResult, error) {
	sp := &spillResult{Elems: cfg.spillN, Jobs: cfg.spillJobs}
	rng := rand.New(rand.NewSource(cfg.seed + 1))
	var latencies []float64
	var dlMBps, sortMBps []float64
	for i := 0; i < cfg.spillJobs; i++ {
		keys := genCells(rng, cfg.spillN, cfg.kind)
		body, ct, query := submitBody(keys, 0, binary, cfg.kind)
		start := time.Now()
		resp, err := client.Post(cfg.url+"/v1/sort"+query, ct, bytes.NewReader(body))
		if err != nil {
			sp.Failed++
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st jobStatus
		if resp.StatusCode != http.StatusOK || json.Unmarshal(raw, &st) != nil || st.State != "done" {
			sp.Failed++
			continue
		}
		if !st.Spilled && !cfg.cluster {
			// A coordinator never reports spilled: its big-job path is
			// scatter/merge across backends, which is exactly what this
			// phase then measures end to end.
			return nil, fmt.Errorf("spill phase: %d-key job was not spilled — raise -spill-n past the server's DDR budget", cfg.spillN)
		}
		dlStart := time.Now()
		bodyBytes, ok := streamVerify(client, cfg.url+st.ResultURL, cfg.spillN, binary, cfg.kind)
		if !ok {
			sp.Failed++
			continue
		}
		dlSec := time.Since(dlStart).Seconds()
		total := time.Since(start)
		sp.Completed++
		latencies = append(latencies, float64(total.Nanoseconds())/1e6)
		if dlSec > 0 {
			dlMBps = append(dlMBps, float64(bodyBytes)/1e6/dlSec)
		}
		sortMBps = append(sortMBps, float64(cfg.spillN*8)/1e6/total.Seconds())
	}
	sp.Latency = summarize(latencies)
	sp.DownloadMBps = mean(dlMBps)
	sp.SortMBps = mean(sortMBps)

	m, err := scrapeMetrics(client, cfg.url)
	if err != nil {
		return nil, err
	}
	sp.DiskWriteBps = m["spill_disk_write_bytes_per_sec"]
	sp.DiskReadBps = m["spill_disk_read_bytes_per_sec"]
	sp.SpillJobs = m["sched_spill_jobs_total"]
	sp.SpillRuns = m["sched_spill_runs_total"]
	sp.SpilledBytes = m["sched_spill_bytes_written_total"]
	return sp, nil
}

// verifyBufs recycles result-verification buffers across downloads. The
// job's n is known before its result is fetched, so the destination is
// sized up front and reused — without it every verified download grows a
// fresh []int64 from nil, and at spill sizes that allocation churn makes
// the driver the bottleneck it is trying to measure.
var verifyBufs = mem.NewSlicePool()

// streamVerify downloads a result, returning its body size and whether
// it decoded to wantN cells in the key type's order. With binary set it
// negotiates the frame stream, checks the declared kind and total
// against the job's known shape before reading any payload, and decodes
// into the pooled buffer's memory directly.
func streamVerify(client *http.Client, url string, wantN int, binary bool, kind wire.Kind) (int64, bool) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, false
	}
	if binary {
		req.Header.Set("Accept", wire.ContentType)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	cr := &countingReader{r: resp.Body}
	buf := verifyBufs.Get(wantN)
	if buf == nil {
		buf = make([]int64, wantN)
	}
	defer verifyBufs.Put(buf)
	var keys []int64
	if binary {
		fr, err := wire.NewReaderAnyKind(cr)
		if err != nil || fr.Kind() != kind || fr.Total() != int64(wantN) {
			return cr.n, false
		}
		if err := fr.ReadInto(buf); err != nil {
			return cr.n, false
		}
		keys = buf
	} else {
		keys = buf[:0]
		if err := json.NewDecoder(cr).Decode(&keys); err != nil {
			return cr.n, false
		}
	}
	if len(keys) != wantN {
		return cr.n, false
	}
	return cr.n, cellsInOrder(keys, kind)
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// scrapeMetrics parses the server's Prometheus text exposition into a
// flat name -> value map (labelless gauges and counters only, which is
// all the spill families use).
func scrapeMetrics(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	out := map[string]float64{}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.Contains(fields[0], "{") {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, nil
}

// phaseGroups maps each job_phase_seconds phase label onto its breakdown
// group (mirrors internal/telemetry's taxonomy).
var phaseGroups = map[string]string{
	"admit": "wall", "queue": "wall", "lease": "wall", "run": "wall",
	"copy-in": "work", "compute": "work", "copy-out": "work", "spill-write": "work",
	"merge": "post", "stream": "post",
}

// scrapePhaseBreakdown reads the server's job_phase_seconds histograms
// (labeled series — the flat scrapeMetrics skips those) and reduces each
// phase to count / total / mean / within-group share, plus the mean model
// drift ratio from job_model_drift_ratio.
func scrapePhaseBreakdown(client *http.Client, url string) (map[string]phaseStat, float64, error) {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	phases := map[string]phaseStat{}
	var driftSum, driftCount float64
	const sumPrefix = `job_phase_seconds_sum{phase="`
	const countPrefix = `job_phase_seconds_count{phase="`
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(fields[0], sumPrefix):
			if name, ok := strings.CutSuffix(fields[0][len(sumPrefix):], `"}`); ok {
				st := phases[name]
				st.TotalS = val
				phases[name] = st
			}
		case strings.HasPrefix(fields[0], countPrefix):
			if name, ok := strings.CutSuffix(fields[0][len(countPrefix):], `"}`); ok {
				st := phases[name]
				st.Count = int64(val)
				phases[name] = st
			}
		case fields[0] == "job_model_drift_ratio_sum":
			driftSum = val
		case fields[0] == "job_model_drift_ratio_count":
			driftCount = val
		}
	}
	groupTotal := map[string]float64{}
	for name, st := range phases {
		st.Group = phaseGroups[name]
		phases[name] = st
		groupTotal[st.Group] += st.TotalS
	}
	for name, st := range phases {
		if st.Count > 0 {
			st.MeanMS = st.TotalS / float64(st.Count) * 1e3
		}
		if t := groupTotal[st.Group]; t > 0 {
			st.Share = st.TotalS / t
		}
		phases[name] = st
	}
	drift := 0.0
	if driftCount > 0 {
		drift = driftSum / driftCount
	}
	return phases, drift, nil
}

// printPhaseSummary prints the wall-phase attribution line the sweep ends
// with — the human-readable version of server_phase_breakdown.
func printPhaseSummary(phases map[string]phaseStat, drift float64) {
	var parts []string
	for _, name := range []string{"admit", "queue", "lease", "run", "merge", "stream"} {
		st, ok := phases[name]
		if !ok || st.Count == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.0f%% (mean %.1fms)", name, st.Share*100, st.MeanMS))
	}
	fmt.Printf("server phases: %s\n", strings.Join(parts, ", "))
	if drift > 0 {
		fmt.Printf("model drift: measured/predicted run mean %.2fx\n", drift)
	}
}

// probeCluster asks /healthz whether the target is a coordinator: a
// single node has no "backends" array, a cluster tier always does.
// Returns the fleet size and how many backends are currently up (0, 0
// for a single node).
func probeCluster(client *http.Client, url string) (backends, up int) {
	resp, err := client.Get(url + "/healthz")
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	var body struct {
		Backends []struct {
			Up bool `json:"up"`
		} `json:"backends"`
	}
	if json.NewDecoder(resp.Body).Decode(&body) != nil {
		return 0, 0
	}
	for _, b := range body.Backends {
		if b.Up {
			up++
		}
	}
	return len(body.Backends), up
}

// scrapeClusterStats reads the coordinator's cluster_* families: the
// labelless counters via the flat scrape, the per-backend routed bytes
// from the labeled cluster_backend_bytes_routed_total series.
func scrapeClusterStats(client *http.Client, url string, backends int) (*clusterStats, error) {
	flat, err := scrapeMetrics(client, url)
	if err != nil {
		return nil, err
	}
	cs := &clusterStats{
		Backends:          backends,
		Jobs:              flat["cluster_jobs_total"],
		JobsFailed:        flat["cluster_jobs_failed_total"],
		Partitions:        flat["cluster_partitions_total"],
		PartitionRetries:  flat["cluster_partition_retries_total"],
		PartitionBackoffs: flat["cluster_partition_backoffs_total"],
		Resamples:         flat["cluster_partition_resamples_total"],
		MergeBytes:        flat["cluster_merge_bytes_total"],
		MergeStallSec:     flat["cluster_merge_stall_seconds_total"],
		BytesRouted:       make([]float64, backends),
	}
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	const routedPrefix = `cluster_backend_bytes_routed_total{backend="`
	const upPrefix = `cluster_backend_up{backend="`
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		parseIdx := func(prefix string) (int, bool) {
			if !strings.HasPrefix(fields[0], prefix) {
				return 0, false
			}
			is, ok := strings.CutSuffix(fields[0][len(prefix):], `"}`)
			if !ok {
				return 0, false
			}
			i, err := strconv.Atoi(is)
			return i, err == nil && i >= 0 && i < backends
		}
		if i, ok := parseIdx(routedPrefix); ok {
			cs.BytesRouted[i] = val
		} else if _, ok := parseIdx(upPrefix); ok && val > 0 {
			cs.BackendsUp++
		}
	}
	return cs, nil
}

// waitHealthy polls /healthz until the server answers 200.
func waitHealthy(client *http.Client, url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server never became healthy: %v", err)
			}
			return fmt.Errorf("server never became healthy")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runLevel drives one offered-load level: arrivals fire on a fixed clock
// for cfg.duration regardless of how many requests are still in flight
// (open-loop arrivals), then the level waits for its stragglers. Each
// arrival is serviced by the closed-loop retry client, sharing one
// retry budget and one circuit breaker across the level.
func runLevel(client *http.Client, cfg config, rate float64, binary bool) levelResult {
	interval := time.Duration(float64(time.Second) / rate)
	rng := rand.New(rand.NewSource(cfg.seed))
	pol := retryPolicy{
		maxRetries:  cfg.retries,
		baseBackoff: 100 * time.Millisecond,
		maxBackoff:  5 * time.Second,
	}
	bud := newRetryBudget(cfg.budget)
	brk := newBreaker(cfg.cbTrips, cfg.cbCooldown)

	var (
		mu          sync.Mutex
		latencies   []float64 // milliseconds, completed jobs only
		startDelays []float64 // milliseconds, server-reported queue waits
		completed   int
		inWindow    int
		rejected    int
		shed        int
		failed      int
		retries     int
	)
	var wg sync.WaitGroup

	sample := cfg.verifySample
	if sample < 1 {
		sample = 1
	}
	// Pre-generate every request body before the timed window opens. Key
	// generation and body encoding cost real CPU per job; paid inside
	// the window they rise with the offered rate and the driver steals
	// capacity from the very server it is measuring — the measured "knee"
	// would be the driver's, not the service's.
	jobs := make([]prejob, 0, int(rate*cfg.duration.Seconds())+2)
	for i := 0; i < cap(jobs); i++ {
		n := cfg.nMin
		if cfg.nMax > cfg.nMin {
			n += rng.Intn(cfg.nMax - cfg.nMin)
		}
		if cfg.kind == wire.KindRecord {
			n &^= 1 // whole records only
		}
		krng := rand.New(rand.NewSource(rng.Int63()))
		keys := genCells(krng, n, cfg.kind)
		body, ct, query := submitBody(keys, cfg.deadlineMS, binary, cfg.kind)
		jobs = append(jobs, prejob{
			n: n, body: body, ct: ct, query: query, binary: binary,
			verify: cfg.verify && i%sample == 0,
		})
	}

	start := time.Now()
	submitted := 0
	for next := start; time.Since(start) < cfg.duration && submitted < len(jobs); next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		pj := jobs[submitted]
		seed := rng.Int63()
		submitted++
		wg.Add(1)
		go func() {
			defer wg.Done()
			ms, startMS, tries, outcome := oneJob(client, cfg, pol, bud, brk, pj, seed)
			finished := time.Now()
			mu.Lock()
			defer mu.Unlock()
			retries += tries
			switch outcome {
			case "ok":
				completed++
				if finished.Sub(start) <= cfg.duration {
					inWindow++
				}
				latencies = append(latencies, ms)
				startDelays = append(startDelays, startMS)
			case "rejected":
				rejected++
			case "shed":
				shed++
			default:
				failed++
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Goodput is in-window completions per second of offered-load window —
	// the server's sustained completion rate while arrivals are firing.
	// Dividing total completions by total elapsed would fold the straggler
	// drain (mostly doomed retries waiting out backoff) into the
	// denominator, making goodput collapse with offered load even when the
	// server's completion rate is flat; counting drain completions against
	// the window alone would inflate it.
	return levelResult{
		OfferedRPS:        rate,
		DurationSec:       elapsed.Seconds(),
		Submitted:         submitted,
		Completed:         completed,
		Rejected:          rejected,
		Shed:              shed,
		Failed:            failed,
		Retries:           retries,
		CompletedInWindow: inWindow,
		GoodputRPS:        float64(inWindow) / cfg.duration.Seconds(),
		Latency:           summarize(latencies),
		StartDelay:        summarize(startDelays),
		BreakerTrips:      brk.tripCount(),
	}
}

// prejob is one pre-generated request: the body is encoded before the
// level's timed window opens so the driver's in-window CPU cost is just
// the wire work.
type prejob struct {
	n      int
	body   []byte
	ct     string
	query  string
	binary bool
	verify bool
}

// oneJob runs one job through the closed-loop retry client: submit in
// wait mode, verify on success (when this job is in the verify sample),
// back off and retry on backpressure within the policy, budget, and
// breaker. Outcome is "ok", "rejected" (backpressure that retries could
// not clear), "shed" (accepted by the server, then evicted by its
// overload control), or "failed". Latency is first-attempt submit to
// verified completion — the client's view, retries included; startMS is
// the server-reported queue wait, the quantity a start deadline bounds.
func oneJob(client *http.Client, cfg config, pol retryPolicy, bud *retryBudget, brk *breaker, pj prejob, seed int64) (ms, startMS float64, tries int, outcome string) {
	rng := rand.New(rand.NewSource(seed))
	body := pj.body

	start := time.Now()
	for attempt := 0; ; attempt++ {
		// retryable asks the shared discipline whether one more attempt is
		// allowed, spending a budget token if so.
		retryable := func() bool {
			return attempt < pol.maxRetries && bud.take()
		}
		now := time.Now()
		if !brk.allow(now) {
			// Breaker open: no wire traffic. Waiting out the cooldown is a
			// retry like any other — bounded by the same policy.
			if !retryable() {
				return 0, 0, attempt, "rejected"
			}
			time.Sleep(pol.jitteredBackoff(rng, attempt, cfg.cbCooldown))
			continue
		}
		req, err := http.NewRequest(http.MethodPost, cfg.url+"/v1/sort"+pj.query, bytes.NewReader(body))
		if err != nil {
			return 0, 0, attempt, "failed"
		}
		req.Header.Set("Content-Type", pj.ct)
		if cfg.deadlineMS > 0 {
			// Carrying the deadline in a header lets the server shed this
			// request before decoding the body when the model already knows
			// it cannot start in time; expect-continue keeps the body off
			// the wire entirely on that path.
			req.Header.Set("X-Deadline-Ms", strconv.FormatInt(cfg.deadlineMS, 10))
			req.Header.Set("Expect", "100-continue")
		}
		resp, err := client.Do(req)
		if err != nil {
			brk.record(time.Now(), false)
			return 0, 0, attempt, "failed"
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()

		switch resp.StatusCode {
		case http.StatusOK:
			brk.record(time.Now(), false)
			var st jobStatus
			if err := json.Unmarshal(raw, &st); err != nil {
				return 0, 0, attempt, "failed"
			}
			if st.State != "done" {
				if st.Shed {
					// The server admitted the job and its overload control
					// evicted it — an explicit verdict, not a failure.
					return 0, 0, attempt, "shed"
				}
				return 0, 0, attempt, "failed"
			}
			if pj.verify {
				if _, ok := streamVerify(client, cfg.url+st.ResultURL, pj.n, pj.binary, cfg.kind); !ok {
					return 0, 0, attempt, "failed"
				}
			}
			if w, err := time.ParseDuration(st.QueueWait); err == nil {
				startMS = float64(w.Nanoseconds()) / 1e6
			}
			return float64(time.Since(start).Nanoseconds()) / 1e6, startMS, attempt, "ok"
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			brk.record(time.Now(), true)
			if !retryable() {
				return 0, 0, attempt, "rejected"
			}
			time.Sleep(pol.jitteredBackoff(rng, attempt, retryHint(resp, raw)))
		default:
			brk.record(time.Now(), false)
			return 0, 0, attempt, "failed"
		}
	}
}

// retryHint extracts the server's backoff hint from a backpressure
// answer: the millisecond-precision retry_after_ms in the JSON body
// when present, else the whole-seconds Retry-After header, else zero
// (the client falls back to exponential backoff).
func retryHint(resp *http.Response, raw []byte) time.Duration {
	var eb errorBody
	if json.Unmarshal(raw, &eb) == nil && eb.RetryAfterMS > 0 {
		return time.Duration(eb.RetryAfterMS) * time.Millisecond
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.ParseInt(s, 10, 64); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// scrapeOverload reads the server's shed attribution and brownout state
// from /metrics (labeled families the flat scrapeMetrics skips).
func scrapeOverload(client *http.Client, url string) (*overloadStats, error) {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	st := &overloadStats{ShedByReason: map[string]float64{}}
	const shedPrefix = `sched_shed_total{reason="`
	const raisePrefix = `sched_brownout_transitions_total{direction="raise"}`
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(fields[0], shedPrefix):
			if reason, ok := strings.CutSuffix(fields[0][len(shedPrefix):], `"}`); ok {
				st.ShedByReason[reason] = val
			}
		case fields[0] == "sched_brownout_level":
			st.BrownoutLevel = val
		case fields[0] == raisePrefix:
			st.BrownoutRaise = val
		}
	}
	return st, nil
}

// delta subtracts an earlier scrape, yielding this level's contribution.
// The brownout level is a gauge and is reported as-is (end of level).
func (s *overloadStats) delta(before *overloadStats) *overloadStats {
	out := &overloadStats{ShedByReason: map[string]float64{}, BrownoutLevel: s.BrownoutLevel, BrownoutRaise: s.BrownoutRaise}
	for reason, v := range s.ShedByReason {
		d := v
		if before != nil {
			d -= before.ShedByReason[reason]
		}
		if d > 0 {
			out.ShedByReason[reason] = d
		}
	}
	if before != nil {
		out.BrownoutRaise -= before.BrownoutRaise
		if out.BrownoutRaise < 0 {
			out.BrownoutRaise = 0
		}
	}
	if len(out.ShedByReason) == 0 {
		out.ShedByReason = nil
	}
	return out
}

// summarize reduces a latency sample to the percentiles the sweep reports.
func summarize(ms []float64) latency {
	if len(ms) == 0 {
		return latency{}
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(ms)-1))
		return ms[i]
	}
	return latency{
		P50:  pct(0.50),
		P95:  pct(0.95),
		P99:  pct(0.99),
		Mean: sum / float64(len(ms)),
		Max:  ms[len(ms)-1],
	}
}
