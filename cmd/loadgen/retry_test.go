package main

import (
	"math/rand"
	"net/http"
	"testing"
	"time"
)

func TestJitteredBackoffHonorsHint(t *testing.T) {
	pol := retryPolicy{maxRetries: 3, baseBackoff: 100 * time.Millisecond, maxBackoff: 5 * time.Second}
	rng := rand.New(rand.NewSource(1))
	hint := 2 * time.Second
	for i := 0; i < 100; i++ {
		d := pol.jitteredBackoff(rng, 0, hint)
		if d < time.Duration(float64(hint)*0.75) || d >= time.Duration(float64(hint)*1.25) {
			t.Fatalf("hinted backoff %v outside +/-25%% of %v", d, hint)
		}
	}
	// No hint: exponential from the base, still jittered and capped.
	for attempt := 0; attempt < 10; attempt++ {
		d := pol.jitteredBackoff(rng, attempt, 0)
		if d > time.Duration(float64(pol.maxBackoff)*1.25) {
			t.Fatalf("attempt %d backoff %v exceeds cap", attempt, d)
		}
		if d <= 0 {
			t.Fatalf("attempt %d backoff %v not positive", attempt, d)
		}
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	b := newRetryBudget(2)
	if !b.take() || !b.take() {
		t.Fatal("budget refused tokens it had")
	}
	if b.take() {
		t.Fatal("budget granted a third token of two")
	}
}

func TestBreakerOpensAndHalfOpens(t *testing.T) {
	c := newBreaker(3, 100*time.Millisecond)
	t0 := time.Now()
	for i := 0; i < 3; i++ {
		if !c.allow(t0) {
			t.Fatalf("breaker open before threshold (trip %d)", i)
		}
		c.record(t0, true)
	}
	if c.allow(t0.Add(10 * time.Millisecond)) {
		t.Fatal("breaker closed immediately after threshold trips")
	}
	if c.tripCount() != 1 {
		t.Fatalf("trips = %d, want 1", c.tripCount())
	}
	// After cooldown: one half-open probe is admitted; a backpressure
	// answer re-opens immediately, success closes.
	probeTime := t0.Add(150 * time.Millisecond)
	if !c.allow(probeTime) {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	c.record(probeTime, true)
	if c.allow(probeTime.Add(10 * time.Millisecond)) {
		t.Fatal("breaker closed after a failed half-open probe")
	}
	reopenProbe := probeTime.Add(150 * time.Millisecond)
	if !c.allow(reopenProbe) {
		t.Fatal("breaker refused the second probe")
	}
	c.record(reopenProbe, false)
	if !c.allow(reopenProbe.Add(time.Millisecond)) {
		t.Fatal("breaker open after a successful probe")
	}
	// Disabled breaker never blocks.
	off := newBreaker(0, time.Second)
	off.record(t0, true)
	if !off.allow(t0) {
		t.Fatal("disabled breaker blocked a request")
	}
}

func TestRetryHintPrefersBodyMS(t *testing.T) {
	resp := &http.Response{Header: http.Header{"Retry-After": []string{"3"}}}
	if got := retryHint(resp, []byte(`{"code":"overloaded-queue-full","retry_after_ms":750}`)); got != 750*time.Millisecond {
		t.Fatalf("hint = %v, want 750ms from the body", got)
	}
	if got := retryHint(resp, []byte(`{}`)); got != 3*time.Second {
		t.Fatalf("hint = %v, want 3s from the header", got)
	}
	if got := retryHint(&http.Response{Header: http.Header{}}, nil); got != 0 {
		t.Fatalf("hint = %v, want 0 with no hint anywhere", got)
	}
}

func TestOverloadStatsDelta(t *testing.T) {
	before := &overloadStats{ShedByReason: map[string]float64{"deadline-expired": 2}, BrownoutRaise: 1}
	after := &overloadStats{
		ShedByReason:  map[string]float64{"deadline-expired": 5, "brownout-spill": 3},
		BrownoutLevel: 2,
		BrownoutRaise: 4,
	}
	d := after.delta(before)
	if d.ShedByReason["deadline-expired"] != 3 || d.ShedByReason["brownout-spill"] != 3 {
		t.Fatalf("shed delta = %v", d.ShedByReason)
	}
	if d.BrownoutLevel != 2 {
		t.Fatalf("brownout level = %v, want the end-of-level gauge", d.BrownoutLevel)
	}
	if d.BrownoutRaise != 3 {
		t.Fatalf("raises delta = %v, want 3", d.BrownoutRaise)
	}
	if empty := after.delta(after); empty.ShedByReason != nil {
		t.Fatalf("self-delta shed = %v, want nil", empty.ShedByReason)
	}
}
