package main

import (
	"math/rand"
	"sync"
	"time"
)

// retryPolicy is the closed-loop client's give-up discipline: a bounded
// number of attempts per job, a shared retry budget per level (so a
// storm of retries cannot multiply offered load against an already
// overloaded server), and a circuit breaker that stops hitting the wire
// after a run of consecutive backpressure answers.
type retryPolicy struct {
	// maxRetries bounds retries per job (0 = submit once, never retry).
	maxRetries int
	// baseBackoff is the backoff used when the server supplies no
	// Retry-After hint; attempt k waits base<<k, jittered.
	baseBackoff time.Duration
	// maxBackoff caps any single wait, hinted or not.
	maxBackoff time.Duration
}

// jitteredBackoff picks the wait before retry attempt k: the server's
// hint when one was given (Retry-After is the model's own estimate of
// when the submission becomes feasible), exponential otherwise, with
// +/-25% jitter either way so retries from many clients do not arrive
// in lockstep — the synchronized-retry stampede is itself an overload.
func (p retryPolicy) jitteredBackoff(rng *rand.Rand, attempt int, hinted time.Duration) time.Duration {
	d := hinted
	if d <= 0 {
		d = p.baseBackoff << attempt
	}
	if d > p.maxBackoff {
		d = p.maxBackoff
	}
	// Jitter in [0.75, 1.25).
	d = time.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// retryBudget is the shared per-level retry allowance. Every retry
// (not first attempt) spends one token; an exhausted budget turns
// would-be retries into give-ups. This is the "retry budget" pattern:
// under deep overload the extra traffic retries generate is the first
// thing to shed.
type retryBudget struct {
	mu     sync.Mutex
	tokens int
}

func newRetryBudget(tokens int) *retryBudget { return &retryBudget{tokens: tokens} }

func (b *retryBudget) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens <= 0 {
		return false
	}
	b.tokens--
	return true
}

// breaker is a shared circuit breaker over backpressure answers
// (HTTP 429/503). After threshold consecutive trips it opens for
// cooldown: requests fail locally without touching the wire. The first
// request after cooldown is the half-open probe; its success closes the
// breaker, another backpressure answer re-opens it.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
	probing     bool
	trips       int64 // times the breaker opened (reported per level)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may go to the wire right now.
func (c *breaker) allow(now time.Time) bool {
	if c.threshold <= 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if now.Before(c.openUntil) {
		return false
	}
	if !c.openUntil.IsZero() && !c.probing {
		// Cooldown elapsed: admit exactly one half-open probe.
		c.probing = true
	}
	return true
}

// record feeds one wire outcome back. backpressure is a 429/503 answer;
// anything else (success, client error, shed) closes the breaker.
func (c *breaker) record(now time.Time, backpressure bool) {
	if c.threshold <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !backpressure {
		c.consecutive = 0
		c.openUntil = time.Time{}
		c.probing = false
		return
	}
	c.consecutive++
	if c.probing || c.consecutive >= c.threshold {
		c.openUntil = now.Add(c.cooldown)
		c.consecutive = 0
		c.probing = false
		c.trips++
	}
}

func (c *breaker) tripCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trips
}
