// Command stream runs the STREAM-style calibration against the simulated
// KNL and prints the Table 2 parameters. Use -ddr-bw / -mcdram-bw to probe
// reconfigured machines (the paper's future-technology discussion).
package main

import (
	"flag"
	"fmt"

	"knlmlm/internal/knl"
	"knlmlm/internal/mem"
	"knlmlm/internal/stream"
	"knlmlm/internal/units"
)

func main() {
	ddrBW := flag.Float64("ddr-bw", 90, "DDR bandwidth in GB/s")
	mcBW := flag.Float64("mcdram-bw", 400, "MCDRAM bandwidth in GB/s")
	sCopy := flag.Float64("s-copy", 4.8, "per-thread copy probe rate in GB/s")
	sComp := flag.Float64("s-comp", 6.78, "per-thread compute probe rate in GB/s")
	perKernel := flag.Bool("kernels", false, "also print per-kernel saturated bandwidths")
	flag.Parse()

	cfg := knl.PaperConfig(mem.Flat)
	cfg.Memory.DDRBandwidth = units.GBps(*ddrBW)
	cfg.Memory.MCDRAMBandwidth = units.GBps(*mcBW)
	m := knl.MustNew(cfg)

	cal := stream.Calibrate(m, units.GBps(*sCopy), units.GBps(*sComp))
	fmt.Printf("DDR_max    = %6.1f GB/s\n", cal.DDRMax.GBpsValue())
	fmt.Printf("MCDRAM_max = %6.1f GB/s\n", cal.MCDRAMMax.GBpsValue())
	fmt.Printf("S_copy     = %6.2f GB/s\n", cal.SCopy.GBpsValue())
	fmt.Printf("S_comp     = %6.2f GB/s\n", cal.SComp.GBpsValue())

	if *perKernel {
		fmt.Println("\nsaturated per-kernel bandwidths (256 threads):")
		for _, k := range stream.Kernels() {
			ddr := stream.Measure(m, k, 256, units.GBps(*sCopy), 1<<26, false)
			mc := stream.Measure(m, k, 256, units.GBps(*sComp), 1<<26, true)
			fmt.Printf("  %-6s DDR %6.1f GB/s   MCDRAM %6.1f GB/s\n",
				k, ddr.Bandwidth.GBpsValue(), mc.Bandwidth.GBpsValue())
		}
	}
}
