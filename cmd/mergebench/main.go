// Command mergebench runs the paper's Section 5 streaming merge benchmark
// on the simulated KNL: a chunked, triple-buffered pipeline whose compute
// stage is a repeated two-way merge.
//
// Examples:
//
//	mergebench                           # the full Figure 8b sweep
//	mergebench -repeats 8 -copy 4        # one configuration
//	mergebench -repeats 8 -copy 4 -async # event-driven schedule (extension)
//	mergebench -real -n 1000000          # execute the real data flow
//	mergebench -real -n 4000000 -repeats 4 -trace out.json -metrics
//	mergebench -chaos -chaos-seed 7 -n 400000 -metrics
//	mergebench -repeats 8 -copy 4 -bench-json BENCH_merge.json
//
// With -trace / -metrics the run is captured by the telemetry subsystem
// (Chrome trace-event JSON and Prometheus text format); real runs also
// print the occupancy/stall report and the Eq. 1–5 model-drift table.
// -bench-json appends a perf-trajectory record (config, makespan, overlap
// efficiency). -cpuprofile/-memprofile write standard pprof profiles of
// the whole run.
//
// With -chaos (implies -real), the pipeline runs under a randomized,
// seeded fault plan — stage errors/panics/latency, staging-buffer
// allocation failures, an undersized MCDRAM — and prints the
// injection/retry/degradation tally; the faults_* and pipeline_*
// counters land in the same registry -metrics prints, so the flags
// compose exactly as in cmd/mlmsort.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"knlmlm/internal/fault"
	"knlmlm/internal/knl"
	"knlmlm/internal/mem"
	"knlmlm/internal/memkind"
	"knlmlm/internal/mergebench"
	"knlmlm/internal/model"
	"knlmlm/internal/prof"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/units"
	"knlmlm/internal/workload"
)

func main() {
	repeats := flag.Int("repeats", 0, "merge repeats (0 = sweep the paper grid)")
	copyThreads := flag.Int("copy", 0, "copy-in thread count (0 = sweep)")
	async := flag.Bool("async", false, "use the event-driven pipeline instead of the paper's barrier schedule")
	buffers := flag.Int("buffers", 3, "staging buffers for -async")
	real := flag.Bool("real", false, "execute the real data flow on the host")
	n := flag.Int("n", 1_000_000, "element count for -real")
	verbose := flag.Bool("v", false, "print the phase trace")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	metrics := flag.Bool("metrics", false, "print Prometheus-format metrics for the run")
	benchJSON := flag.String("bench-json", "", "write a BENCH-style JSON record (config, makespan, overlap efficiency) to this file")
	chaos := flag.Bool("chaos", false, "run the real pipeline under a randomized fault-injection plan (implies -real)")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos plan seed (with -chaos)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if *chaos {
		*real = true
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mergebench: %v\n", err)
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "mergebench: %v\n", err)
		}
	}()

	if *real {
		runReal(*n, max(1, *repeats), *buffers, *chaos, *chaosSeed, *tracePath, *metrics, *benchJSON, fail)
		return
	}

	m := knl.MustNew(knl.PaperConfig(mem.Flat))
	if *repeats > 0 && *copyThreads > 0 {
		cfg := mergebench.PaperConfig(*repeats, *copyThreads)
		var res mergebench.Result
		if *async {
			res = mergebench.SimulateAsync(m, cfg, *buffers)
		} else {
			res = mergebench.Simulate(m, cfg)
		}
		fmt.Printf("repeats=%d copy=%d compute=%d: %.3fs\n",
			*repeats, *copyThreads, cfg.ComputeThreads(), res.Time.Seconds())
		if *verbose {
			fmt.Print(res.Trace.String())
		}
		emitSimTelemetry(m, cfg, res, *async, *buffers, *tracePath, *metrics, *benchJSON, fail)
		return
	}
	if *tracePath != "" || *metrics || *benchJSON != "" {
		fmt.Fprintln(os.Stderr, "mergebench: -trace/-metrics/-bench-json need a single configuration (-repeats and -copy) or -real; ignoring for the sweep")
	}

	repeatsGrid := []int{1, 2, 4, 8, 16, 32, 64}
	copyGrid := []int{1, 2, 4, 8, 16, 32}
	res := mergebench.Sweep(m, repeatsGrid, copyGrid)
	fmt.Printf("%-8s", "repeats")
	for _, c := range copyGrid {
		fmt.Printf("  copy=%-5d", c)
	}
	fmt.Println("  best")
	for i, r := range repeatsGrid {
		fmt.Printf("%-8d", r)
		best := 0
		for j := range copyGrid {
			fmt.Printf("  %8.3fs", res[i][j].Time.Seconds())
			if res[i][j].Time < res[i][best].Time {
				best = j
			}
		}
		fmt.Printf("  %d\n", copyGrid[best])
	}
}

// runReal executes the host pipeline, optionally captured by telemetry
// and/or perturbed by a chaos plan. Every metric family the run emits —
// span-derived, faults_*, pipeline_* — shares one registry, so -chaos
// and -metrics compose.
func runReal(n, repeats, buffers int, chaos bool, chaosSeed int64, tracePath string, metrics bool, benchJSON string, fail func(error)) {
	const chunkLen = 1 << 16
	xs := workload.Generate(workload.Random, n, 1)
	telemetryOn := tracePath != "" || metrics || benchJSON != ""
	var rec *telemetry.Recorder
	if telemetryOn {
		rec = telemetry.NewRecorder()
	}
	reg := telemetry.NewRegistry()
	opts := mergebench.RealOptions{}
	if rec != nil {
		opts.Observer = rec
	}
	var inj *fault.Injector
	var res *telemetry.Resilience
	if chaos {
		plan := fault.NewPlan(chaosSeed, units.BytesForElements(int64(n)))
		inj = plan.Injector()
		res = telemetry.NewResilience(reg)
		inj.Metrics = res
		opts.Heap = memkind.NewHeap(plan.HBWCapacity, 1<<42)
		opts.AllocFaults = inj
		opts.Resilience = res
		opts.Wrap = inj.Wrap
		opts.Retry = plan.Retry
		opts.ChunkTimeout = plan.ChunkTimeout
		fmt.Println(plan)
	}
	start := time.Now()
	out, stats, err := mergebench.RunRealResilient(context.Background(), xs, chunkLen, repeats, buffers, opts)
	if err != nil {
		fail(err)
	}
	wall := time.Since(start)
	fmt.Printf("real merge benchmark processed %d elements through %d-buffer staging in %v\n",
		len(out), stats.Buffers, wall)
	if chaos {
		fmt.Printf("chaos: %v; retries=%d degradations=%d (%d hbw, %d degraded, %d dropped buffers)\n",
			inj, res.Retries(), res.Degradations(),
			stats.HBWBuffers, stats.DegradedBuffers, stats.DroppedBuffers)
	}
	if !telemetryOn {
		return
	}

	spans := rec.Spans()
	a := telemetry.Publish(reg, spans)

	// File artifacts land before any further stdout writing: if stdout is
	// a pipe truncated early (e.g. | head), the process dies on the next
	// print and the files must already exist.
	if tracePath != "" {
		var ct telemetry.ChromeTrace
		ct.AddProcessName(1, "merge benchmark (real)")
		ct.AddSpans(1, spans)
		if err := ct.WriteFile(tracePath); err != nil {
			fail(err)
		}
	}
	if benchJSON != "" {
		recd := telemetry.NewBenchRecord("mergebench-real")
		recd.Config["n"] = n
		recd.Config["chunk_len"] = chunkLen
		recd.Config["repeats"] = repeats
		recd.Config["buffers"] = buffers
		recd.FromAnalysis(a)
		recd.MakespanSeconds = wall.Seconds() // full run incl. setup
		if err := recd.WriteFile(benchJSON); err != nil {
			fail(err)
		}
	}

	fmt.Println()
	fmt.Print(a.StallReport().ASCII())
	// The real pipeline runs one goroutine per stage, so the model sees
	// pools {1, 1, 1} with `repeats` passes over B = the array's bytes.
	p := model.PaperTable2()
	p.BCopy = units.BytesForElements(int64(n))
	pred := p.Evaluate(model.Pools{In: 1, Out: 1, Comp: 1}, float64(repeats))
	fmt.Println()
	fmt.Print(a.ModelDriftReport(pred).ASCII())
	if tracePath != "" {
		fmt.Printf("\nwrote Chrome trace (%d spans) to %s\n", len(spans), tracePath)
	}
	if benchJSON != "" {
		fmt.Printf("wrote bench record to %s\n", benchJSON)
	}
	if metrics {
		fmt.Println()
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
	}
}

// emitSimTelemetry exports a single simulated configuration: bridged
// Chrome trace, metrics over the simulation clock, bench record, and the
// simulated-vs-model drift table (Table 3's comparison for one cell).
func emitSimTelemetry(m *knl.Machine, cfg mergebench.Config, res mergebench.Result, async bool, buffers int, tracePath string, metrics bool, benchJSON string, fail func(error)) {
	if tracePath == "" && !metrics && benchJSON == "" {
		return
	}
	spans := telemetry.SimSpans(res.Trace)
	reg := telemetry.NewRegistry()
	a := telemetry.Publish(reg, spans)

	// File artifacts before stdout reporting, as in runReal.
	if tracePath != "" {
		var ct telemetry.ChromeTrace
		ct.AddProcessName(1, "merge benchmark (simulated)")
		ct.AddSimTrace(1, res.Trace)
		if err := ct.WriteFile(tracePath); err != nil {
			fail(err)
		}
	}
	if benchJSON != "" {
		recd := telemetry.NewBenchRecord("mergebench-sim")
		recd.Config["repeats"] = cfg.Repeats
		recd.Config["copy_threads"] = cfg.CopyThreads
		recd.Config["total_threads"] = cfg.TotalThreads
		recd.Config["async"] = async
		if async {
			recd.Config["buffers"] = buffers
		}
		recd.Simulated = true
		recd.FromAnalysis(a)
		recd.MakespanSeconds = res.Time.Seconds() // simulated seconds
		if err := recd.WriteFile(benchJSON); err != nil {
			fail(err)
		}
	}

	pred := cfg.ModelParams(m).Evaluate(
		model.SymmetricPools(cfg.CopyThreads, cfg.TotalThreads), float64(cfg.Repeats))
	fmt.Println()
	fmt.Print(a.ModelDriftReport(pred).ASCII())
	if tracePath != "" {
		fmt.Printf("\nwrote simulated Chrome trace to %s\n", tracePath)
	}
	if benchJSON != "" {
		fmt.Printf("wrote bench record to %s\n", benchJSON)
	}
	if metrics {
		fmt.Println()
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
