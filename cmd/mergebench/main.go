// Command mergebench runs the paper's Section 5 streaming merge benchmark
// on the simulated KNL: a chunked, triple-buffered pipeline whose compute
// stage is a repeated two-way merge.
//
// Examples:
//
//	mergebench                           # the full Figure 8b sweep
//	mergebench -repeats 8 -copy 4        # one configuration
//	mergebench -repeats 8 -copy 4 -async # event-driven schedule (extension)
//	mergebench -real -n 1000000          # execute the real data flow
package main

import (
	"flag"
	"fmt"
	"os"

	"knlmlm/internal/knl"
	"knlmlm/internal/mem"
	"knlmlm/internal/mergebench"
	"knlmlm/internal/workload"
)

func main() {
	repeats := flag.Int("repeats", 0, "merge repeats (0 = sweep the paper grid)")
	copyThreads := flag.Int("copy", 0, "copy-in thread count (0 = sweep)")
	async := flag.Bool("async", false, "use the event-driven pipeline instead of the paper's barrier schedule")
	buffers := flag.Int("buffers", 3, "staging buffers for -async")
	real := flag.Bool("real", false, "execute the real data flow on the host")
	n := flag.Int("n", 1_000_000, "element count for -real")
	verbose := flag.Bool("v", false, "print the phase trace")
	flag.Parse()

	if *real {
		xs := workload.Generate(workload.Random, *n, 1)
		out, err := mergebench.RunReal(xs, 1<<16, max(1, *repeats), *buffers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mergebench: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("real merge benchmark processed %d elements through %d-buffer staging\n", len(out), *buffers)
		return
	}

	m := knl.MustNew(knl.PaperConfig(mem.Flat))
	if *repeats > 0 && *copyThreads > 0 {
		cfg := mergebench.PaperConfig(*repeats, *copyThreads)
		var res mergebench.Result
		if *async {
			res = mergebench.SimulateAsync(m, cfg, *buffers)
		} else {
			res = mergebench.Simulate(m, cfg)
		}
		fmt.Printf("repeats=%d copy=%d compute=%d: %.3fs\n",
			*repeats, *copyThreads, cfg.ComputeThreads(), res.Time.Seconds())
		if *verbose {
			fmt.Print(res.Trace.String())
		}
		return
	}

	repeatsGrid := []int{1, 2, 4, 8, 16, 32, 64}
	copyGrid := []int{1, 2, 4, 8, 16, 32}
	res := mergebench.Sweep(m, repeatsGrid, copyGrid)
	fmt.Printf("%-8s", "repeats")
	for _, c := range copyGrid {
		fmt.Printf("  copy=%-5d", c)
	}
	fmt.Println("  best")
	for i, r := range repeatsGrid {
		fmt.Printf("%-8d", r)
		best := 0
		for j := range copyGrid {
			fmt.Printf("  %8.3fs", res[i][j].Time.Seconds())
			if res[i][j].Time < res[i][best].Time {
				best = j
			}
		}
		fmt.Printf("  %d\n", copyGrid[best])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
