// Command clusterbench measures the distributed sort tier's scale-out
// and fault tolerance, producing the committed BENCH_PR9.json artifact.
//
// It boots real mlmserve processes (equal per-node budgets) and drives
// them three ways:
//
//   - direct: a closed-loop client fleet against one mlmserve node —
//     the single-node baseline goodput,
//   - coordinator x1: the same fleet through mlmcoord fronting that one
//     node — isolating the coordinator's own overhead (partition,
//     scatter, merge) from scale-out,
//   - coordinator xN: mlmcoord fronting N backends — the scale-out
//     measurement.
//
// One box cannot host N genuinely independent CPU-bound nodes, so every
// backend runs with -sim-chunk-ms: a fixed sleep added to each chunk's
// compute stage. Sleeps release the CPU, which makes per-node service
// rate a configured quantity — colocated nodes overlap their sleeps
// exactly like separate machines overlap real compute — while the parts
// of the system under test (routing, scatter/merge, retry, the
// coordinator's own CPU) stay real. The reported scale-out ratio is
// therefore honest about coordination cost, not about arithmetic.
//
// After the sweep, the fault-tolerance check: submit one large job
// through a 2-backend coordinator, SIGKILL a backend at ~50% of the
// job's measured baseline duration, and require the job to complete
// with a verified-sorted result and cluster_partition_retries_total
// showing only the lost partitions re-ran.
//
// Examples:
//
//	clusterbench -out BENCH_PR9.json
//	clusterbench -scales 1,2 -duration 5s -skip-kill
//	clusterbench -skip-sweep -kill-elems 300000   # fault check only (CI)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"knlmlm/internal/wire"
)

type options struct {
	serveBin   string
	coordBin   string
	simChunkMS int
	budgetMB   int
	workers    int
	scales     []int
	partsPer   int
	clients    int
	duration   time.Duration
	elems      int
	megachunk  int
	killElems  int
	seed       int64
	out        string
	skipSweep  bool
	skipKill   bool
}

func main() {
	var o options
	var scalesFlag string
	flag.StringVar(&o.serveBin, "mlmserve-bin", "", "mlmserve binary (empty = build ./cmd/mlmserve into a temp dir)")
	flag.StringVar(&o.coordBin, "mlmcoord-bin", "", "mlmcoord binary (empty = build ./cmd/mlmcoord into a temp dir)")
	flag.IntVar(&o.simChunkMS, "sim-chunk-ms", 25, "per-chunk compute sleep on every backend, ms (the configured per-node service rate)")
	flag.IntVar(&o.budgetMB, "budget-mb", 64, "MCDRAM budget per node, MiB (equal across all points)")
	flag.IntVar(&o.workers, "workers", 2, "scheduler workers per node")
	flag.StringVar(&scalesFlag, "scales", "1,2,4", "coordinator backend counts to sweep")
	flag.IntVar(&o.partsPer, "parts-per-backend", 1, "coordinator partitions per backend: 1 is the natural homogeneous-fleet split; >1 buys routing granularity at a fixed per-part toll")
	flag.IntVar(&o.clients, "clients", 8, "closed-loop clients per measurement point")
	flag.DurationVar(&o.duration, "duration", 8*time.Second, "measurement window per point")
	flag.IntVar(&o.elems, "elems", 65536, "keys per sweep job")
	flag.IntVar(&o.megachunk, "megachunk", 8192, "megachunk_len per job: elems/megachunk chunks, each sleeping -sim-chunk-ms")
	flag.IntVar(&o.killElems, "kill-elems", 400000, "keys in the fault-tolerance job")
	flag.Int64Var(&o.seed, "seed", 1, "workload seed")
	flag.StringVar(&o.out, "out", "BENCH_PR9.json", "output JSON path")
	flag.BoolVar(&o.skipSweep, "skip-sweep", false, "skip the scale-out sweep (fault check only)")
	flag.BoolVar(&o.skipKill, "skip-kill", false, "skip the backend-kill fault check")
	flag.Parse()
	for _, f := range strings.Split(scalesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "clusterbench: bad scale %q\n", f)
			os.Exit(1)
		}
		o.scales = append(o.scales, n)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		os.Exit(1)
	}
}

// point is one measured configuration of the sweep.
type point struct {
	Mode     string  `json:"mode"` // "direct" or "coordinator"
	Backends int     `json:"backends"`
	Jobs     int     `json:"jobs_completed"`
	Failed   int     `json:"jobs_failed"`
	Rejected int     `json:"jobs_rejected,omitempty"`
	Goodput  float64 `json:"goodput_jobs_per_sec"`
	P50MS    float64 `json:"latency_p50_ms"`
	P95MS    float64 `json:"latency_p95_ms"`
	// Cluster telemetry scraped from the coordinator after the window
	// (absent on the direct point).
	Retries    float64 `json:"partition_retries,omitempty"`
	Backoffs   float64 `json:"partition_backoffs,omitempty"`
	StallSec   float64 `json:"merge_stall_seconds,omitempty"`
	Partitions float64 `json:"partitions,omitempty"`
}

// killResult is the fault-tolerance check's outcome.
type killResult struct {
	Elems          int     `json:"elems"`
	KilledBackend  int     `json:"killed_backend"`
	KilledAtMS     float64 `json:"killed_at_ms"`
	BaselineMS     float64 `json:"baseline_ms"`
	DurationMS     float64 `json:"duration_ms"`
	Completed      bool    `json:"completed"`
	VerifiedSorted bool    `json:"verified_sorted"`
	Retries        float64 `json:"partition_retries"`
}

// benchDoc is the BENCH_PR9.json document.
type benchDoc struct {
	Bench      string  `json:"bench"`
	SimChunkMS int     `json:"sim_chunk_ms"`
	BudgetMB   int     `json:"budget_mb_per_node"`
	Workers    int     `json:"workers_per_node"`
	Elems      int     `json:"elems_per_job"`
	Megachunk  int     `json:"megachunk_len"`
	PartsPer   int     `json:"parts_per_backend"`
	Clients    int     `json:"closed_loop_clients"`
	Seed       int64   `json:"seed"`
	Points     []point `json:"points,omitempty"`
	// CoordOverhead1x is coordinator-with-1-backend goodput over direct
	// single-node goodput: the tier's toll before any scale-out.
	CoordOverhead1x float64 `json:"coordinator_overhead_1x,omitempty"`
	// Scaleout2x is 2-backend coordinator goodput over the direct
	// single-node baseline — the headline scale-out ratio.
	Scaleout2x float64     `json:"scaleout_2_backends_over_single,omitempty"`
	Kill       *killResult `json:"kill_test,omitempty"`
}

func run(o options) error {
	work, err := os.MkdirTemp("", "clusterbench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	if o.serveBin == "" {
		o.serveBin = filepath.Join(work, "mlmserve")
		if err := buildBin(o.serveBin, "./cmd/mlmserve"); err != nil {
			return err
		}
	}
	if o.coordBin == "" {
		o.coordBin = filepath.Join(work, "mlmcoord")
		if err := buildBin(o.coordBin, "./cmd/mlmcoord"); err != nil {
			return err
		}
	}

	doc := benchDoc{
		Bench:      "cluster tier scale-out and fault tolerance (colocated nodes, configured service rate)",
		SimChunkMS: o.simChunkMS,
		BudgetMB:   o.budgetMB,
		Workers:    o.workers,
		Elems:      o.elems,
		Megachunk:  o.megachunk,
		PartsPer:   o.partsPer,
		Clients:    o.clients,
		Seed:       o.seed,
	}

	if !o.skipSweep {
		// Direct single-node baseline.
		p, err := measurePoint(o, work, "direct", 1)
		if err != nil {
			return err
		}
		doc.Points = append(doc.Points, p)
		single := p.Goodput

		for _, n := range o.scales {
			p, err := measurePoint(o, work, "coordinator", n)
			if err != nil {
				return err
			}
			doc.Points = append(doc.Points, p)
			if single > 0 {
				switch n {
				case 1:
					doc.CoordOverhead1x = p.Goodput / single
				case 2:
					doc.Scaleout2x = p.Goodput / single
				}
			}
		}
	}

	if !o.skipKill {
		kr, err := runKillTest(o, work)
		if err != nil {
			return err
		}
		doc.Kill = kr
		fmt.Printf("kill test: %d keys, backend %d SIGKILLed at %.0fms (baseline %.0fms) — completed=%v verified=%v, %d partition retries, %.0fms total\n",
			kr.Elems, kr.KilledBackend, kr.KilledAtMS, kr.BaselineMS,
			kr.Completed, kr.VerifiedSorted, int(kr.Retries), kr.DurationMS)
	}

	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(o.out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", o.out)
	return nil
}

func buildBin(out, pkg string) error {
	cmd := exec.Command("go", "build", "-o", out, pkg)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	return cmd.Run()
}

// proc is one spawned service process.
type proc struct {
	name string
	cmd  *exec.Cmd
	url  string
	log  string
}

func startProc(bin, name, logPath string, args ...string) (*proc, error) {
	lf, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = lf, lf
	if err := cmd.Start(); err != nil {
		lf.Close()
		return nil, err
	}
	lf.Close() // the child holds its own descriptor
	p := &proc{name: name, cmd: cmd, log: logPath}
	addr, err := waitListening(logPath, 10*time.Second)
	if err != nil {
		p.stop()
		raw, _ := os.ReadFile(logPath)
		return nil, fmt.Errorf("%s never listened: %v\n%s", name, err, raw)
	}
	p.url = "http://" + addr
	return p, nil
}

// waitListening polls the process log for the "listening on <addr>"
// line both services print once bound.
func waitListening(logPath string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		raw, _ := os.ReadFile(logPath)
		for _, line := range strings.Split(string(raw), "\n") {
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				if rest != "" {
					return rest, nil
				}
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("timeout")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (p *proc) stop() {
	if p == nil || p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
}

// startBackends boots n mlmserve nodes with identical budgets and the
// configured per-chunk service sleep.
func startBackends(o options, work, tag string, n int) ([]*proc, error) {
	var procs []*proc
	for i := 0; i < n; i++ {
		dir := filepath.Join(work, fmt.Sprintf("%s-spill-%d", tag, i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return procs, err
		}
		p, err := startProc(o.serveBin, fmt.Sprintf("mlmserve-%d", i),
			filepath.Join(work, fmt.Sprintf("%s-serve-%d.log", tag, i)),
			"-addr", "127.0.0.1:0",
			"-budget-mb", strconv.Itoa(o.budgetMB),
			"-workers", strconv.Itoa(o.workers),
			"-ddr-budget-mb", "256",
			"-disk-budget-mb", "512",
			"-spill-dir", dir,
			"-sim-chunk-ms", strconv.Itoa(o.simChunkMS),
			// The sweep measures saturated sort capacity, not overload
			// degradation (PR 7's bench): a closed-loop fleet holds every
			// point at its queueing knee, and brownout sheds there would
			// alias into the scale-out ratio as noise. Off for every point
			// equally — direct and coordinated nodes face the same posture.
			"-brownout=false",
		)
		if err != nil {
			return procs, err
		}
		procs = append(procs, p)
	}
	return procs, nil
}

func startCoord(o options, work, tag string, backends []*proc) (*proc, error) {
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.url
	}
	return startProc(o.coordBin, "mlmcoord",
		filepath.Join(work, tag+"-coord.log"),
		"-addr", "127.0.0.1:0",
		"-backends", strings.Join(urls, ","),
		"-parts-per-backend", strconv.Itoa(o.partsPer),
		"-poll-interval", "250ms",
	)
}

func stopAll(procs ...*proc) {
	for _, p := range procs {
		p.stop()
	}
}

// measurePoint boots one configuration, saturates it with the
// closed-loop fleet for the window, and tears it down.
func measurePoint(o options, work, mode string, n int) (point, error) {
	tag := fmt.Sprintf("%s-%d", mode, n)
	backends, err := startBackends(o, work, tag, n)
	if err != nil {
		stopAll(backends...)
		return point{}, err
	}
	target := backends[0].url
	var coord *proc
	if mode == "coordinator" {
		coord, err = startCoord(o, work, tag, backends)
		if err != nil {
			stopAll(append(backends, coord)...)
			return point{}, err
		}
		target = coord.url
	}
	defer stopAll(append(backends, coord)...)

	client := newClient()
	if err := waitHealthy(client, target, 10*time.Second); err != nil {
		return point{}, err
	}
	pt := closedLoop(client, target, o)
	pt.Mode, pt.Backends = mode, n
	if coord != nil {
		if m, err := scrapeFlat(client, coord.url); err == nil {
			pt.Retries = m["cluster_partition_retries_total"]
			pt.Backoffs = m["cluster_partition_backoffs_total"]
			pt.StallSec = m["cluster_merge_stall_seconds_total"]
			pt.Partitions = m["cluster_partitions_total"]
		}
	}
	fmt.Printf("%-11s x%d: %3d jobs (%d failed, %d rejected) in %v — %.2f jobs/s, p50 %.0fms p95 %.0fms\n",
		mode, n, pt.Jobs, pt.Failed, pt.Rejected, o.duration, pt.Goodput, pt.P50MS, pt.P95MS)
	return pt, nil
}

func newClient() *http.Client {
	return &http.Client{
		Timeout: 120 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}
}

// closedLoop saturates the target: o.clients goroutines each submit a
// pre-encoded binary job in wait mode, download the result, verify it
// is sorted, and immediately submit the next — for o.duration. Client
// starts are staggered across one estimated service wave and the ramp
// is excluded from the window: launched together, a wait-mode fleet
// convoys — every job drains in one synchronized wave and the workers
// idle during each wave's merge/download tail, measuring the convoy
// artifact instead of the service. Goodput counts only jobs whose
// verified completion landed inside the post-ramp window.
func closedLoop(client *http.Client, url string, o options) point {
	// Pre-encode one distinct body per client before the window opens so
	// in-window driver CPU is only wire I/O and the sortedness scan.
	bodies := make([][]byte, o.clients)
	rng := rand.New(rand.NewSource(o.seed))
	for i := range bodies {
		keys := make([]int64, o.elems)
		krng := rand.New(rand.NewSource(rng.Int63()))
		for k := range keys {
			keys[k] = krng.Int63()
		}
		bodies[i] = wire.Encode(nil, keys, 0)
	}
	query := "?wait=1&megachunk_len=" + strconv.Itoa(o.megachunk)

	// One wave is roughly the fleet's jobs drained through one node's
	// workers: the stagger spreads first submits across it so the system
	// reaches a phase-distributed steady state instead of a convoy.
	chunks := (o.elems + o.megachunk - 1) / o.megachunk
	perJob := time.Duration(chunks*o.simChunkMS) * time.Millisecond
	ramp := time.Duration(o.clients) * perJob / time.Duration(o.workers)
	if ramp > 4*time.Second {
		ramp = 4 * time.Second
	}

	var (
		mu        sync.Mutex
		completed int
		failed    int
		rejected  int
		lats      []float64
	)
	start := time.Now()
	open := start.Add(ramp)
	deadline := open.Add(o.duration)
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * ramp / time.Duration(o.clients))
			buf := make([]int64, o.elems)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				out, hint := oneJob(client, url, query, body, buf)
				done := time.Now()
				mu.Lock()
				switch out {
				case jobOK:
					if done.After(open) && done.Before(deadline) {
						completed++
						lats = append(lats, float64(done.Sub(t0).Nanoseconds())/1e6)
					}
				case jobRejected:
					rejected++
				default:
					failed++
				}
				mu.Unlock()
				if out == jobRejected {
					// Honor the server's backpressure hint: the closed loop
					// measures what the service can complete, not how fast a
					// client can hammer a 429.
					if hint <= 0 {
						hint = 100 * time.Millisecond
					}
					time.Sleep(hint)
				}
			}
		}(c, bodies[c])
	}
	wg.Wait()

	sort.Float64s(lats)
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	return point{
		Jobs:     completed,
		Failed:   failed,
		Rejected: rejected,
		Goodput:  float64(completed) / o.duration.Seconds(),
		P50MS:    pct(0.50),
		P95MS:    pct(0.95),
	}
}

type jobOutcome int

const (
	jobOK jobOutcome = iota
	jobRejected
	jobFailed
)

// oneJob submits one pre-encoded binary body in wait mode, downloads
// the result as a frame stream, and verifies it is sorted and complete.
// A 429/503 answer is a rejection and carries the server's retry hint.
func oneJob(client *http.Client, url, query string, body []byte, buf []int64) (jobOutcome, time.Duration) {
	resp, err := client.Post(url+"/v1/sort"+query, wire.ContentType, bytes.NewReader(body))
	if err != nil {
		return jobFailed, 0
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		var eb struct {
			RetryAfterMS int64 `json:"retry_after_ms"`
		}
		_ = json.Unmarshal(raw, &eb)
		return jobRejected, time.Duration(eb.RetryAfterMS) * time.Millisecond
	}
	var st struct {
		State     string `json:"state"`
		ResultURL string `json:"result_url"`
	}
	if resp.StatusCode != http.StatusOK || json.Unmarshal(raw, &st) != nil || st.State != "done" {
		return jobFailed, 0
	}
	n, ok := downloadSorted(client, url+st.ResultURL, buf)
	if !ok || n != len(buf) {
		return jobFailed, 0
	}
	return jobOK, 0
}

// downloadSorted streams a wire result into buf, returning how many
// elements arrived and whether they were sorted.
func downloadSorted(client *http.Client, url string, buf []int64) (int, bool) {
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Accept", wire.ContentType)
	resp, err := client.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	fr, err := wire.NewReader(resp.Body)
	if err != nil || fr.Total() != int64(len(buf)) {
		return 0, false
	}
	if err := fr.ReadInto(buf); err != nil {
		return 0, false
	}
	for i := 1; i < len(buf); i++ {
		if buf[i] < buf[i-1] {
			return len(buf), false
		}
	}
	return len(buf), true
}

// runKillTest boots a fresh 2-backend coordinator, times one large job
// to completion (the baseline), then runs an identical job and SIGKILLs
// backend 1 at half the baseline. The job must still complete with a
// verified-sorted result, and only the lost partitions may re-run.
func runKillTest(o options, work string) (*killResult, error) {
	backends, err := startBackends(o, work, "kill", 2)
	if err != nil {
		stopAll(backends...)
		return nil, err
	}
	coord, err := startCoord(o, work, "kill", backends)
	if err != nil {
		stopAll(append(backends, coord)...)
		return nil, err
	}
	defer stopAll(append(backends, coord)...)

	client := newClient()
	if err := waitHealthy(client, coord.url, 10*time.Second); err != nil {
		return nil, err
	}

	keys := make([]int64, o.killElems)
	krng := rand.New(rand.NewSource(o.seed + 77))
	for k := range keys {
		keys[k] = krng.Int63()
	}
	body := wire.Encode(nil, keys, 0)
	query := "?wait=1&megachunk_len=" + strconv.Itoa(o.megachunk)
	buf := make([]int64, o.killElems)

	// Baseline: same job, nobody dies.
	t0 := time.Now()
	if out, _ := oneJob(client, coord.url, query, body, buf); out != jobOK {
		return nil, fmt.Errorf("kill test baseline job failed")
	}
	baseline := time.Since(t0)

	before, _ := scrapeFlat(client, coord.url)

	type outcome struct {
		ok  bool
		dur time.Duration
	}
	res := make(chan outcome, 1)
	t1 := time.Now()
	go func() {
		out, _ := oneJob(client, coord.url, query, body, buf)
		res <- outcome{out == jobOK, time.Since(t1)}
	}()

	killAt := baseline / 2
	time.Sleep(killAt)
	_ = backends[1].cmd.Process.Kill() // SIGKILL: no drain, no goodbye
	_, _ = backends[1].cmd.Process.Wait()

	var out outcome
	select {
	case out = <-res:
	case <-time.After(2 * time.Minute):
		return nil, fmt.Errorf("kill test job hung after backend SIGKILL")
	}

	after, _ := scrapeFlat(client, coord.url)
	kr := &killResult{
		Elems:         o.killElems,
		KilledBackend: 1,
		KilledAtMS:    float64(killAt.Nanoseconds()) / 1e6,
		BaselineMS:    float64(baseline.Nanoseconds()) / 1e6,
		DurationMS:    float64(out.dur.Nanoseconds()) / 1e6,
		Completed:     out.ok,
		Retries:       after["cluster_partition_retries_total"] - before["cluster_partition_retries_total"],
	}
	// oneJob already verified sortedness and completeness; mirror it
	// into the artifact explicitly.
	kr.VerifiedSorted = out.ok
	if !out.ok {
		return kr, fmt.Errorf("kill test job did not complete correctly after backend SIGKILL")
	}
	if kr.Retries < 1 {
		return kr, fmt.Errorf("kill test completed but no partition retries were recorded — the kill landed too late to matter")
	}
	return kr, nil
}

// scrapeFlat parses labelless metrics from /metrics.
func scrapeFlat(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.HasPrefix(fields[0], "#") || strings.Contains(fields[0], "{") {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			out[fields[0]] = v
		}
	}
	return out, nil
}

func waitHealthy(client *http.Client, url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never became healthy", url)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
