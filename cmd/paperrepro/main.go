// Command paperrepro regenerates every table and figure of the paper's
// evaluation on the simulated KNL.
//
// Usage:
//
//	paperrepro                  # everything
//	paperrepro -exp table1      # one experiment
//	paperrepro -format markdown # markdown tables (default ascii)
//	paperrepro -csv             # CSV to stdout (for plotting)
//	paperrepro -trace out.json  # side-by-side Chrome trace of all variants
//
// Experiments: table1, fig6a, fig6b, fig7, table2, fig8a, fig8b, table3,
// bender, all.
//
// -trace simulates every Table 1 variant at the given -trace-n size and
// writes one Chrome trace-event JSON with a process lane per variant, so
// the phase schedules can be compared side by side in Perfetto or
// chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"os"

	"knlmlm"
	"knlmlm/internal/mlmsort"
	"knlmlm/internal/report"
	"knlmlm/internal/telemetry"
	"knlmlm/internal/workload"
)

// writeVariantTrace simulates each Table 1 variant and bridges the phase
// traces into one combined timeline.
func writeVariantTrace(path string, n int64, order workload.Order) error {
	var ct telemetry.ChromeTrace
	for pid, alg := range mlmsort.Algorithms() {
		cfg := mlmsort.PaperSortConfig(n, order)
		res := mlmsort.Simulate(alg, cfg)
		ct.AddSimTrace(pid+1, res.Trace)
		// Named after AddSimTrace so this label wins over the trace's own.
		ct.AddProcessName(pid+1, fmt.Sprintf("%s  (%.2fs simulated)", alg, res.Time.Seconds()))
	}
	return ct.WriteFile(path)
}

func render(t *report.Table, format string) string {
	switch format {
	case "markdown":
		return t.Markdown()
	case "csv":
		return t.CSV()
	default:
		return t.ASCII()
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, fig6a, fig6b, fig7, table2, fig8a, fig8b, table3, bender, all)")
	format := flag.String("format", "ascii", "output format: ascii, markdown, csv")
	seed := flag.Int64("seed", 1, "noise-model seed for repeated runs")
	tracePath := flag.String("trace", "", "write a side-by-side Chrome trace of every Table 1 variant to this file")
	traceN := flag.Int64("trace-n", 2_000_000_000, "element count for -trace")
	traceOrder := flag.String("trace-order", "random", "input order for -trace")
	flag.Parse()

	if *tracePath != "" {
		order, err := workload.ParseOrder(*traceOrder)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
			os.Exit(2)
		}
		if err := writeVariantTrace(*tracePath, *traceN, order); err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote side-by-side Chrome trace of %d variants to %s\n",
			len(mlmsort.Algorithms()), *tracePath)
		if *exp == "all" {
			return // -trace alone doesn't trigger the full regeneration
		}
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	var table1Rows []knlmlm.Table1Row
	needTable1 := run("table1") || run("fig6a") || run("fig6b")
	if needTable1 {
		table1Rows = knlmlm.Table1(*seed)
	}

	if run("table1") {
		fmt.Println(render(knlmlm.Table1Report(table1Rows), *format))
		ran = true
	}
	if run("fig6a") {
		rows := knlmlm.Fig6(table1Rows, workload.Random)
		fmt.Println(render(knlmlm.Fig6Report(rows, workload.Random), *format))
		ran = true
	}
	if run("fig6b") {
		rows := knlmlm.Fig6(table1Rows, workload.Reverse)
		fmt.Println(render(knlmlm.Fig6Report(rows, workload.Reverse), *format))
		ran = true
	}
	if run("fig7") {
		fmt.Println(render(knlmlm.Fig7Report(knlmlm.Fig7()), *format))
		ran = true
	}
	if run("table2") {
		fmt.Println(render(knlmlm.Table2Report(knlmlm.Table2()), *format))
		ran = true
	}
	if run("fig8a") {
		t := &report.Table{
			Title:   "Figure 8a: model-estimated merge benchmark time",
			Headers: []string{"Repeats", "Copy-in Threads", "Model Time(s)"},
		}
		for _, p := range knlmlm.Fig8a() {
			t.AddRow(fmt.Sprintf("%d", p.Repeats), fmt.Sprintf("%d", p.CopyThreads), fmt.Sprintf("%.3f", p.Seconds))
		}
		fmt.Println(render(t, *format))
		ran = true
	}
	if run("fig8b") {
		t := &report.Table{
			Title:   "Figure 8b: simulated merge benchmark time",
			Headers: []string{"Repeats", "Copy-in Threads", "Time(s)"},
		}
		for _, p := range knlmlm.Fig8b() {
			t.AddRow(fmt.Sprintf("%d", p.Repeats), fmt.Sprintf("%d", p.CopyThreads), fmt.Sprintf("%.3f", p.Seconds))
		}
		fmt.Println(render(t, *format))
		ran = true
	}
	if run("table3") {
		fmt.Println(render(knlmlm.Table3Report(knlmlm.Table3()), *format))
		ran = true
	}
	if run("bender") {
		b := knlmlm.Bender()
		t := &report.Table{
			Title:   "Section 4 corroboration: basic chunked sort (Bender et al.) at 4G random",
			Headers: []string{"Variant", "Time(s)"},
		}
		t.AddRow("GNU-flat", fmt.Sprintf("%.2f", b.GNUFlatSeconds))
		t.AddRow("GNU-cache", fmt.Sprintf("%.2f", b.GNUCacheSeconds))
		t.AddRow("Basic-chunked", fmt.Sprintf("%.2f", b.BasicSeconds))
		fmt.Println(render(t, *format))
		fmt.Printf("gain over GNU-flat: %.2fx (Bender et al. predicted ~1.3x); beats cache mode: %v (paper: false)\n\n",
			b.GainOverFlat, b.BeatsCacheMode)
		ran = true
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "paperrepro: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
