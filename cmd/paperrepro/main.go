// Command paperrepro regenerates every table and figure of the paper's
// evaluation on the simulated KNL.
//
// Usage:
//
//	paperrepro                  # everything
//	paperrepro -exp table1      # one experiment
//	paperrepro -format markdown # markdown tables (default ascii)
//	paperrepro -csv             # CSV to stdout (for plotting)
//
// Experiments: table1, fig6a, fig6b, fig7, table2, fig8a, fig8b, table3,
// bender, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"knlmlm"
	"knlmlm/internal/report"
	"knlmlm/internal/workload"
)

func render(t *report.Table, format string) string {
	switch format {
	case "markdown":
		return t.Markdown()
	case "csv":
		return t.CSV()
	default:
		return t.ASCII()
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, fig6a, fig6b, fig7, table2, fig8a, fig8b, table3, bender, all)")
	format := flag.String("format", "ascii", "output format: ascii, markdown, csv")
	seed := flag.Int64("seed", 1, "noise-model seed for repeated runs")
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	var table1Rows []knlmlm.Table1Row
	needTable1 := run("table1") || run("fig6a") || run("fig6b")
	if needTable1 {
		table1Rows = knlmlm.Table1(*seed)
	}

	if run("table1") {
		fmt.Println(render(knlmlm.Table1Report(table1Rows), *format))
		ran = true
	}
	if run("fig6a") {
		rows := knlmlm.Fig6(table1Rows, workload.Random)
		fmt.Println(render(knlmlm.Fig6Report(rows, workload.Random), *format))
		ran = true
	}
	if run("fig6b") {
		rows := knlmlm.Fig6(table1Rows, workload.Reverse)
		fmt.Println(render(knlmlm.Fig6Report(rows, workload.Reverse), *format))
		ran = true
	}
	if run("fig7") {
		fmt.Println(render(knlmlm.Fig7Report(knlmlm.Fig7()), *format))
		ran = true
	}
	if run("table2") {
		fmt.Println(render(knlmlm.Table2Report(knlmlm.Table2()), *format))
		ran = true
	}
	if run("fig8a") {
		t := &report.Table{
			Title:   "Figure 8a: model-estimated merge benchmark time",
			Headers: []string{"Repeats", "Copy-in Threads", "Model Time(s)"},
		}
		for _, p := range knlmlm.Fig8a() {
			t.AddRow(fmt.Sprintf("%d", p.Repeats), fmt.Sprintf("%d", p.CopyThreads), fmt.Sprintf("%.3f", p.Seconds))
		}
		fmt.Println(render(t, *format))
		ran = true
	}
	if run("fig8b") {
		t := &report.Table{
			Title:   "Figure 8b: simulated merge benchmark time",
			Headers: []string{"Repeats", "Copy-in Threads", "Time(s)"},
		}
		for _, p := range knlmlm.Fig8b() {
			t.AddRow(fmt.Sprintf("%d", p.Repeats), fmt.Sprintf("%d", p.CopyThreads), fmt.Sprintf("%.3f", p.Seconds))
		}
		fmt.Println(render(t, *format))
		ran = true
	}
	if run("table3") {
		fmt.Println(render(knlmlm.Table3Report(knlmlm.Table3()), *format))
		ran = true
	}
	if run("bender") {
		b := knlmlm.Bender()
		t := &report.Table{
			Title:   "Section 4 corroboration: basic chunked sort (Bender et al.) at 4G random",
			Headers: []string{"Variant", "Time(s)"},
		}
		t.AddRow("GNU-flat", fmt.Sprintf("%.2f", b.GNUFlatSeconds))
		t.AddRow("GNU-cache", fmt.Sprintf("%.2f", b.GNUCacheSeconds))
		t.AddRow("Basic-chunked", fmt.Sprintf("%.2f", b.BasicSeconds))
		fmt.Println(render(t, *format))
		fmt.Printf("gain over GNU-flat: %.2fx (Bender et al. predicted ~1.3x); beats cache mode: %v (paper: false)\n\n",
			b.GainOverFlat, b.BeatsCacheMode)
		ran = true
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "paperrepro: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
