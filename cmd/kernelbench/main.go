// Command kernelbench measures the sort and merge kernel pairs — the
// previous implementation against its replacement — and writes the
// results as a JSON benchmark record. It is the programmatic twin of the
// benchmarks in internal/psort/kernel_bench_test.go and produced the
// committed BENCH_PR3.json.
//
// Pairs:
//
//   - serial introsort vs LSD radix sort (1e5 and 1e6 elements)
//   - per-element loser-tree drain vs adaptive gallop-batched drain
//     (k=8 and k=16 random runs, plus k=8 blocky runs)
//   - linear two-way merge vs galloping Merge2 (random and disjoint)
//
// Usage:
//
//	kernelbench                    # print the table, write BENCH_PR3.json
//	kernelbench -out bench.json    # write elsewhere
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"knlmlm/internal/psort"
	"knlmlm/internal/workload"
)

// measurement is one side of a benchmark pair.
type measurement struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s"`
	Iters   int     `json:"iterations"`
}

// pair is one old-vs-new comparison. Speedup > 1 means the candidate is
// faster than the baseline.
type pair struct {
	Name      string      `json:"name"`
	Baseline  measurement `json:"baseline"`
	Candidate measurement `json:"candidate"`
	Speedup   float64     `json:"speedup"`
}

type record struct {
	Suite     string `json:"suite"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Pairs     []pair `json:"pairs"`
}

func measure(name string, fn func(b *testing.B)) measurement {
	r := testing.Benchmark(fn)
	m := measurement{
		Name:    name,
		NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N),
		Iters:   r.N,
	}
	if r.Bytes > 0 && r.T > 0 {
		m.MBPerS = float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6
	}
	return m
}

func compare(name string, baseName string, base func(b *testing.B), candName string, cand func(b *testing.B)) pair {
	b := measure(baseName, base)
	c := measure(candName, cand)
	return pair{Name: name, Baseline: b, Candidate: c, Speedup: b.NsPerOp / c.NsPerOp}
}

// benchSort mirrors internal/psort's benchSort: the copy-back is outside
// the timed region.
func benchSort(n int, sortFn func([]int64)) func(b *testing.B) {
	return func(b *testing.B) {
		src := workload.Generate(workload.Random, n, 1)
		buf := make([]int64, n)
		b.SetBytes(int64(n * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(buf, src)
			b.StartTimer()
			sortFn(buf)
		}
	}
}

func randomRuns(k, runLen int) [][]int64 {
	runs := make([][]int64, k)
	for i := range runs {
		r := workload.Generate(workload.Random, runLen, int64(i+1))
		psort.Serial(r)
		runs[i] = r
	}
	return runs
}

// blockyRuns deals contiguous key blocks round-robin across the runs —
// the shape range-partitioned producers emit, where batch copies win big.
func blockyRuns(k, runLen, blockLen int) [][]int64 {
	runs := make([][]int64, k)
	next := int64(0)
	for len(runs[k-1]) < runLen {
		for i := 0; i < k; i++ {
			for j := 0; j < blockLen && len(runs[i]) < runLen; j++ {
				runs[i] = append(runs[i], next)
				next++
			}
		}
	}
	return runs
}

func benchMergeK(src [][]int64, batched bool) func(b *testing.B) {
	return func(b *testing.B) {
		k := len(src)
		total := 0
		for _, r := range src {
			total += len(r)
		}
		work := make([][]int64, k)
		dst := make([]int64, total)
		b.SetBytes(int64(total * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(work, src) // headers only; the tree consumes headers, not data
			lt := psort.NewLoserTree(work)
			b.StartTimer()
			if batched {
				lt.MergeIntoBatched(dst)
			} else {
				lt.MergeInto(dst)
			}
		}
	}
}

// merge2Linear is the pre-galloping two-way merge, kept here as the
// baseline side of the Merge2 pair (the internal reference copy is
// unexported). Ties go to a, matching Merge2's stability rule.
func merge2Linear(dst, a, b []int64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

func benchMerge2(a, bb []int64, fn func(dst, a, b []int64)) func(b *testing.B) {
	return func(b *testing.B) {
		dst := make([]int64, len(a)+len(bb))
		b.SetBytes(int64(len(dst) * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fn(dst, a, bb)
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_PR3.json", "output JSON path")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "kernelbench: %v\n", err)
		os.Exit(2)
	}

	sortedRandom := func(n int, seed int64) []int64 {
		xs := workload.Generate(workload.Random, n, seed)
		psort.Serial(xs)
		return xs
	}
	disjoint := func(n int, base int64) []int64 {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = base + int64(i)
		}
		return xs
	}

	radix := func(n int) func([]int64) {
		scratch := make([]int64, n)
		return func(xs []int64) { psort.RadixSortScratch(xs, scratch) }
	}

	rec := record{
		Suite:     "kernelbench-pr3",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	add := func(p pair) {
		rec.Pairs = append(rec.Pairs, p)
		fmt.Printf("%-22s %-14s %10.0f ns/op   %-14s %10.0f ns/op   %5.2fx\n",
			p.Name, p.Baseline.Name, p.Baseline.NsPerOp, p.Candidate.Name, p.Candidate.NsPerOp, p.Speedup)
	}

	add(compare("sort-1e5", "serial", benchSort(100_000, psort.Serial),
		"radix", benchSort(100_000, radix(100_000))))
	add(compare("sort-1e6", "serial", benchSort(1_000_000, psort.Serial),
		"radix", benchSort(1_000_000, radix(1_000_000))))

	k8 := randomRuns(8, 100_000)
	add(compare("mergek-8-random", "per-element", benchMergeK(k8, false),
		"batched", benchMergeK(k8, true)))
	k16 := randomRuns(16, 50_000)
	add(compare("mergek-16-random", "per-element", benchMergeK(k16, false),
		"batched", benchMergeK(k16, true)))
	k8b := blockyRuns(8, 100_000, 512)
	add(compare("mergek-8-blocky", "per-element", benchMergeK(k8b, false),
		"batched", benchMergeK(k8b, true)))

	a, b := sortedRandom(500_000, 7), sortedRandom(500_000, 8)
	add(compare("merge2-random", "linear", benchMerge2(a, b, merge2Linear),
		"gallop", benchMerge2(a, b, psort.Merge2)))
	da, db := disjoint(500_000, 0), disjoint(500_000, 500_000)
	add(compare("merge2-disjoint", "linear", benchMerge2(da, db, merge2Linear),
		"gallop", benchMerge2(da, db, psort.Merge2)))

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
