// Command kernelbench measures the sort and merge kernel pairs — the
// previous implementation against its replacement — and writes the
// results as a JSON benchmark record. It is the programmatic twin of the
// benchmarks in internal/psort and produced the committed BENCH_PR3.json
// and BENCH_PR10.json.
//
// Pairs:
//
//   - serial introsort vs LSD radix sort (1e5 and 1e6 elements)
//   - per-element loser-tree drain vs adaptive gallop-batched drain
//     (k=8 and k=16 random runs, plus k=8 blocky runs)
//   - linear two-way merge vs galloping Merge2 (random and disjoint)
//   - untiled vs software-write-buffered radix scatter (1<<23 int64
//     keys, above the tiling threshold where TLB/associativity misses
//     on 256 scatter streams dominate)
//   - stdlib slices.SortFunc vs the generic typed kernels: float64
//     total order, key+payload records, and byte strings (1e6 keys)
//
// Usage:
//
//	kernelbench                    # print the table, write BENCH_PR10.json
//	kernelbench -out bench.json    # write elsewhere
//	kernelbench -skip-tiled        # skip the 1<<23 tiling pair (CI)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"slices"
	"testing"

	"knlmlm/internal/psort"
	"knlmlm/internal/workload"
)

// measurement is one side of a benchmark pair.
type measurement struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s"`
	Iters   int     `json:"iterations"`
}

// pair is one old-vs-new comparison. Speedup > 1 means the candidate is
// faster than the baseline.
type pair struct {
	Name      string      `json:"name"`
	Baseline  measurement `json:"baseline"`
	Candidate measurement `json:"candidate"`
	Speedup   float64     `json:"speedup"`
}

type record struct {
	Suite     string `json:"suite"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Pairs     []pair `json:"pairs"`
}

func measure(name string, fn func(b *testing.B)) measurement {
	r := testing.Benchmark(fn)
	m := measurement{
		Name:    name,
		NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N),
		Iters:   r.N,
	}
	if r.Bytes > 0 && r.T > 0 {
		m.MBPerS = float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6
	}
	return m
}

func compare(name string, baseName string, base func(b *testing.B), candName string, cand func(b *testing.B)) pair {
	b := measure(baseName, base)
	c := measure(candName, cand)
	return pair{Name: name, Baseline: b, Candidate: c, Speedup: b.NsPerOp / c.NsPerOp}
}

// benchSort mirrors internal/psort's benchSort: the copy-back is outside
// the timed region.
func benchSort(n int, sortFn func([]int64)) func(b *testing.B) {
	return func(b *testing.B) {
		src := workload.Generate(workload.Random, n, 1)
		buf := make([]int64, n)
		b.SetBytes(int64(n * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(buf, src)
			b.StartTimer()
			sortFn(buf)
		}
	}
}

func randomRuns(k, runLen int) [][]int64 {
	runs := make([][]int64, k)
	for i := range runs {
		r := workload.Generate(workload.Random, runLen, int64(i+1))
		psort.Serial(r)
		runs[i] = r
	}
	return runs
}

// blockyRuns deals contiguous key blocks round-robin across the runs —
// the shape range-partitioned producers emit, where batch copies win big.
func blockyRuns(k, runLen, blockLen int) [][]int64 {
	runs := make([][]int64, k)
	next := int64(0)
	for len(runs[k-1]) < runLen {
		for i := 0; i < k; i++ {
			for j := 0; j < blockLen && len(runs[i]) < runLen; j++ {
				runs[i] = append(runs[i], next)
				next++
			}
		}
	}
	return runs
}

func benchMergeK(src [][]int64, batched bool) func(b *testing.B) {
	return func(b *testing.B) {
		k := len(src)
		total := 0
		for _, r := range src {
			total += len(r)
		}
		work := make([][]int64, k)
		dst := make([]int64, total)
		b.SetBytes(int64(total * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(work, src) // headers only; the tree consumes headers, not data
			lt := psort.NewLoserTree(work)
			b.StartTimer()
			if batched {
				lt.MergeIntoBatched(dst)
			} else {
				lt.MergeInto(dst)
			}
		}
	}
}

// merge2Linear is the pre-galloping two-way merge, kept here as the
// baseline side of the Merge2 pair (the internal reference copy is
// unexported). Ties go to a, matching Merge2's stability rule.
func merge2Linear(dst, a, b []int64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

func benchMerge2(a, bb []int64, fn func(dst, a, b []int64)) func(b *testing.B) {
	return func(b *testing.B) {
		dst := make([]int64, len(a)+len(bb))
		b.SetBytes(int64(len(dst) * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fn(dst, a, bb)
		}
	}
}

// benchFloat64Sort pairs a []float64 sorter against the same random
// input; copy-back stays outside the timed region.
func benchFloat64Sort(n int, sortFn func([]float64)) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64() * 1e6
		}
		buf := make([]float64, n)
		b.SetBytes(int64(n * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(buf, src)
			b.StartTimer()
			sortFn(buf)
		}
	}
}

func benchRecordSort(n int, sortFn func([]psort.KV)) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		src := make([]psort.KV, n)
		for i := range src {
			src[i] = psort.KV{Key: rng.Int63(), Payload: int64(i)}
		}
		buf := make([]psort.KV, n)
		b.SetBytes(int64(n * 16))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(buf, src)
			b.StartTimer()
			sortFn(buf)
		}
	}
}

// benchStringSort sorts n short byte strings (8..24 bytes, a shared
// 4-byte prefix on half of them, the shape URL/key workloads take).
// Only the headers are copied back between iterations; the kernels
// never mutate the byte contents.
func benchStringSort(n int, sortFn func([][]byte)) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		src := make([][]byte, n)
		total := 0
		for i := range src {
			l := 8 + rng.Intn(17)
			s := make([]byte, l)
			rng.Read(s)
			if i%2 == 0 {
				copy(s, "key/")
			}
			src[i] = s
			total += l
		}
		buf := make([][]byte, n)
		b.SetBytes(int64(total))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(buf, src)
			b.StartTimer()
			sortFn(buf)
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output JSON path")
	skipTiled := flag.Bool("skip-tiled", false, "skip the 1<<23 write-buffer tiling pair (128 MiB of buffers; slow on small CI runners)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "kernelbench: %v\n", err)
		os.Exit(2)
	}

	sortedRandom := func(n int, seed int64) []int64 {
		xs := workload.Generate(workload.Random, n, seed)
		psort.Serial(xs)
		return xs
	}
	disjoint := func(n int, base int64) []int64 {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = base + int64(i)
		}
		return xs
	}

	radix := func(n int) func([]int64) {
		scratch := make([]int64, n)
		return func(xs []int64) { psort.RadixSortScratch(xs, scratch) }
	}

	rec := record{
		Suite:     "kernelbench-pr10",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	add := func(p pair) {
		rec.Pairs = append(rec.Pairs, p)
		fmt.Printf("%-22s %-14s %10.0f ns/op   %-14s %10.0f ns/op   %5.2fx\n",
			p.Name, p.Baseline.Name, p.Baseline.NsPerOp, p.Candidate.Name, p.Candidate.NsPerOp, p.Speedup)
	}

	add(compare("sort-1e5", "serial", benchSort(100_000, psort.Serial),
		"radix", benchSort(100_000, radix(100_000))))
	add(compare("sort-1e6", "serial", benchSort(1_000_000, psort.Serial),
		"radix", benchSort(1_000_000, radix(1_000_000))))

	k8 := randomRuns(8, 100_000)
	add(compare("mergek-8-random", "per-element", benchMergeK(k8, false),
		"batched", benchMergeK(k8, true)))
	k16 := randomRuns(16, 50_000)
	add(compare("mergek-16-random", "per-element", benchMergeK(k16, false),
		"batched", benchMergeK(k16, true)))
	k8b := blockyRuns(8, 100_000, 512)
	add(compare("mergek-8-blocky", "per-element", benchMergeK(k8b, false),
		"batched", benchMergeK(k8b, true)))

	a, b := sortedRandom(500_000, 7), sortedRandom(500_000, 8)
	add(compare("merge2-random", "linear", benchMerge2(a, b, merge2Linear),
		"gallop", benchMerge2(a, b, psort.Merge2)))
	da, db := disjoint(500_000, 0), disjoint(500_000, 500_000)
	add(compare("merge2-disjoint", "linear", benchMerge2(da, db, merge2Linear),
		"gallop", benchMerge2(da, db, psort.Merge2)))

	// The write-buffered scatter only dispatches above its size floor;
	// 1<<23 keys (64 MiB) is where the 256 naked scatter streams start
	// missing TLB and L2 on every store.
	if !*skipTiled {
		const nt = 1 << 23
		untiled := func(n int) func([]int64) {
			scratch := make([]int64, n)
			return func(xs []int64) { psort.RadixSortScratchUntiled(xs, scratch) }
		}
		add(compare("radix-tiled-8e6", "untiled", benchSort(nt, untiled(nt)),
			"tiled", benchSort(nt, radix(nt))))
	}

	// Generic key kernels vs the stdlib comparison sorts, 1e6 keys each.
	// These are the pairs the CI bench-smoke floor watches.
	f64Scratch := make([]float64, 1_000_000)
	add(compare("f64-sort-1e6",
		"slices.SortFunc", benchFloat64Sort(1_000_000, func(xs []float64) {
			slices.SortFunc(xs, func(x, y float64) int {
				if psort.Float64TotalLess(x, y) {
					return -1
				}
				if psort.Float64TotalLess(y, x) {
					return 1
				}
				return 0
			})
		}),
		"radix-bitflip", benchFloat64Sort(1_000_000, func(xs []float64) {
			psort.SortFloat64sScratch(xs, f64Scratch)
		})))

	kvScratch := make([]psort.KV, 1_000_000)
	add(compare("record-sort-1e6",
		"slices.SortFunc", benchRecordSort(1_000_000, func(rs []psort.KV) {
			slices.SortFunc(rs, func(x, y psort.KV) int {
				switch {
				case x.Key < y.Key:
					return -1
				case x.Key > y.Key:
					return 1
				}
				return 0
			})
		}),
		"record-radix", benchRecordSort(1_000_000, func(rs []psort.KV) {
			psort.SortRecordsScratch(rs, kvScratch)
		})))

	strScratch := make([][]byte, 1_000_000)
	add(compare("string-sort-1e6",
		"slices.SortFunc", benchStringSort(1_000_000, func(ss [][]byte) {
			slices.SortFunc(ss, bytes.Compare)
		}),
		"msd-radix", benchStringSort(1_000_000, func(ss [][]byte) {
			psort.SortByteStringsScratch(ss, strScratch)
		})))

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
