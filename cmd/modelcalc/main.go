// Command modelcalc evaluates the paper's Section 3.2 analytic model:
// copy-thread sweeps (Figure 8a), optimal pool sizes (Table 3's model
// column), and the bandwidth-bound test of Bender et al.
//
// Examples:
//
//	modelcalc                      # Figure 8a sweep + optimal table
//	modelcalc -repeats 8           # one sweep with per-point detail
//	modelcalc -crossover           # where the optimum leaves DDR saturation
package main

import (
	"flag"
	"fmt"

	"knlmlm/internal/model"
)

func main() {
	repeats := flag.Int("repeats", 0, "show the full sweep for one repeats value")
	threads := flag.Int("threads", 256, "total thread budget")
	maxCopy := flag.Int("max-copy", 32, "largest copy-in pool to consider")
	crossover := flag.Bool("crossover", false, "report the crossover pass count")
	flag.Parse()

	p := model.PaperTable2()

	if *crossover {
		x := p.CrossoverPasses(*threads, *maxCopy)
		fmt.Printf("the optimum stops saturating DDR above ~%.1f passes\n", x)
		return
	}

	if *repeats > 0 {
		fmt.Printf("model sweep at %d repeats (%d threads total):\n", *repeats, *threads)
		for _, pr := range p.Sweep(*threads, *maxCopy, float64(*repeats)) {
			marker := " "
			if pr.CopyBound {
				marker = "C" // copy-bound point
			}
			fmt.Printf("  copy=%2d comp=%3d  T_copy=%7.3fs  T_comp=%7.3fs  T_total=%7.3fs %s\n",
				pr.Pools.In, pr.Pools.Comp, pr.TCopy.Seconds(), pr.TComp.Seconds(),
				pr.TTotal.Seconds(), marker)
		}
		best := p.Optimal(*threads, *maxCopy, float64(*repeats))
		fmt.Printf("optimal: %d copy-in threads (%.3fs)\n", best.Pools.In, best.TTotal.Seconds())
		return
	}

	fmt.Println("optimal copy-in threads by repeats (model, exact integer search):")
	for _, r := range []int{1, 2, 4, 8, 16, 32, 64} {
		exact := p.Optimal(*threads, *maxCopy, float64(r))
		pow2 := p.OptimalPowerOfTwo(*threads, *maxCopy, float64(r))
		fmt.Printf("  repeats=%-3d exact=%-3d pow2=%-3d T=%7.3fs\n",
			r, exact.Pools.In, pow2.Pools.In, exact.TTotal.Seconds())
	}
}
