// Package knlmlm reproduces "Optimizing for KNL Usage Modes When Data
// Doesn't Fit in MCDRAM" (Butcher, Olivier, Berry, Hammond, Kogge;
// ICPP 2018) as a self-contained Go library.
//
// The paper's experiments require a Knights Landing node with
// BIOS-selectable MCDRAM modes; this repository substitutes a deterministic
// discrete-event simulation of the KNL memory system (see DESIGN.md for the
// substitution argument) and pairs it with real, executable implementations
// of every algorithm so correctness is testable end to end.
//
// Layering (bottom-up):
//
//   - internal/sim, internal/bandwidth — discrete-event engine and the
//     fluid bandwidth arbiter (max-min fair with priority classes);
//   - internal/mem, internal/cachesim, internal/cachemodel, internal/knl —
//     the machine: devices, usage modes, scratchpad allocator, direct-
//     mapped cache (trace-driven and analytic);
//   - internal/chunk, internal/exec — the chunking+buffering pipeline,
//     simulated and real;
//   - internal/psort — from-scratch sorting substrate (serial adaptive
//     introsort, loser-tree multiway merge, multisequence selection,
//     GNU-parallel-analog sort);
//   - internal/core, internal/mlmsort, internal/mergebench,
//     internal/model, internal/stream — the paper's contribution: MLM-sort
//     and friends, the Section 5 merge benchmark, the Section 3.2 analytic
//     model, and STREAM calibration.
//
// This root package is the facade: it exposes the experiment drivers that
// regenerate every table and figure in the paper (see EXPERIMENTS.md), used
// by cmd/paperrepro and the root benchmark suite.
package knlmlm

import (
	"knlmlm/internal/knl"
	"knlmlm/internal/mem"
	"knlmlm/internal/mlmsort"
	"knlmlm/internal/units"
	"knlmlm/internal/workload"
)

// NewPaperMachine builds the paper's KNL node (Xeon Phi 7250, 16 GiB
// MCDRAM, Table 2 bandwidths) in the given MCDRAM mode.
func NewPaperMachine(mode mem.Mode) *knl.Machine {
	return knl.MustNew(knl.PaperConfig(mode))
}

// Sort simulates one sort configuration and returns its time in seconds.
// It is the simplest entry point; see Table1 and friends for the full
// experiment drivers.
func Sort(a mlmsort.Algorithm, elements int64, order workload.Order) float64 {
	return mlmsort.Simulate(a, mlmsort.PaperSortConfig(elements, order)).Time.Seconds()
}

// SortReal executes the algorithm's real data flow over xs in place.
func SortReal(a mlmsort.Algorithm, xs []int64, threads int) error {
	return mlmsort.RunReal(a, xs, threads, 0)
}

// PaperSizes lists Table 1's problem sizes.
func PaperSizes() []int64 {
	return []int64{2_000_000_000, 4_000_000_000, 6_000_000_000}
}

// MCDRAMCapacity reports the simulated node's MCDRAM size.
func MCDRAMCapacity() units.Bytes { return mem.KNL7250().MCDRAMCapacity }

// newMachine wraps knl.New for callers inside this package (benches and
// experiment drivers that build reconfigured what-if machines).
func newMachine(cfg knl.Config) (*knl.Machine, error) { return knl.New(cfg) }
